//! Blocking client for the `lsdb` wire protocol.
//!
//! One [`Client`] wraps one TCP connection. [`Client::connect`]
//! negotiates the protocol version with a `HELLO` exchange: against a v2
//! server the client envelopes every request with a correlation id,
//! which unlocks [`Client::pipeline`] (many requests in flight on one
//! connection, replies matched by id) and [`Client::call_batch`] (one
//! `BATCH` frame, Morton-sorted server-side execution). Against an older
//! server — or via [`Client::connect_v1`] — it falls back to plain v1
//! framing and every operation still works, just sequentially.
//!
//! Against a v3 server every frame also carries a map id: the client
//! holds a *current map* ([`Client::set_map`], default `0`), routes each
//! request to it, and exposes the catalog ops ([`Client::open_map`],
//! [`Client::list_maps`], [`Client::close_map`], [`Client::stats_v3`]).
//!
//! Requests are built with the typed [`QueryRequest`] builder; the old
//! per-query method zoo remains as thin deprecated wrappers. Server-side
//! error frames surface as [`std::io::ErrorKind::Other`] errors carrying
//! the structured code and message.

use crate::protocol::{
    decode_reply, read_frame, write_frame, BudgetWire, ErrorCode, FrameError, FrameEvent, MapInfo,
    MapStatsWire, Reply, Request, MAX_REPLY_FRAME, PROTOCOL_VERSION,
};
use lsdb_core::{BatchRequest, QueryStats, SegId};
use lsdb_geom::{Point, Rect, Segment};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A server-reported error frame, preserved through [`io::Error`].
#[derive(Clone, Debug)]
pub struct ServerError {
    pub code: ErrorCode,
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error ({:?}): {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// Typed builder for the seven spatial requests — the one front door for
/// constructing [`Request`] values without spelling wire enum variants.
///
/// ```no_run
/// use lsdb_server::QueryRequest;
/// use lsdb_geom::{Point, Rect};
/// # let mut client = lsdb_server::Client::connect("127.0.0.1:4750").unwrap();
/// let reply = client.call(&QueryRequest::window(Rect::new(0, 0, 64, 64)).build())?;
/// let walk = QueryRequest::enclosing_polygon(Point::new(5, 5)).max_steps(500).build();
/// # std::io::Result::Ok(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    request: Request,
}

impl QueryRequest {
    /// Query 1: all segments incident at `p`.
    pub fn incident(p: Point) -> QueryRequest {
        QueryRequest {
            request: Request::Incident(p),
        }
    }

    /// Query 2: segments at the *other* endpoint of `id`, given `at` is
    /// one of its endpoints.
    pub fn second_endpoint(id: SegId, at: Point) -> QueryRequest {
        QueryRequest {
            request: Request::Second { id, at },
        }
    }

    /// Query 3: the nearest segment to `p`.
    pub fn nearest(p: Point) -> QueryRequest {
        QueryRequest {
            request: Request::Nearest(p),
        }
    }

    /// Ranked query 3: the `k` nearest segments, closest first.
    pub fn nearest_k(p: Point, k: u32) -> QueryRequest {
        QueryRequest {
            request: Request::Knn { at: p, k },
        }
    }

    /// Query 5: all segments intersecting `w`.
    pub fn window(w: Rect) -> QueryRequest {
        QueryRequest {
            request: Request::Window(w),
        }
    }

    /// Query 4: the minimal polygon enclosing `p` (default step cap
    /// 10 000; tune with [`QueryRequest::max_steps`]).
    pub fn enclosing_polygon(p: Point) -> QueryRequest {
        QueryRequest {
            request: Request::Polygon {
                at: p,
                max_steps: 10_000,
            },
        }
    }

    /// Cap the polygon boundary walk (no effect on other queries).
    pub fn max_steps(mut self, steps: u32) -> QueryRequest {
        if let Request::Polygon { max_steps, .. } = &mut self.request {
            *max_steps = steps;
        }
        self
    }

    /// The wire request.
    pub fn build(self) -> Request {
        self.request
    }
}

impl From<QueryRequest> for Request {
    fn from(q: QueryRequest) -> Request {
        q.build()
    }
}

/// The full catalog-aware `STATS` answer a v3 server returns: process
/// aggregates, the buffer-budget gauge, and one entry per map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogStats {
    pub queries: u64,
    pub totals: QueryStats,
    pub budget: BudgetWire,
    pub maps: Vec<MapStatsWire>,
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    /// Negotiated envelope version (1, 2 or 3).
    version: u8,
    /// Current map id stamped on every v3 request envelope.
    map: u32,
    next_corr: u32,
}

impl Client {
    /// Connect with default timeouts (10 s read and write) and negotiate
    /// the protocol version (v2 against this crate's server, v1 against
    /// anything older).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit read/write timeout, negotiating as
    /// [`Client::connect`] does.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let mut client = Client::connect_v1_with_timeout(addr, timeout)?;
        client.negotiate()?;
        Ok(client)
    }

    /// Connect speaking plain v1 frames only, no negotiation — what a
    /// pre-v2 client binary does, kept callable for compatibility
    /// testing and for talking through v1-only middleboxes.
    pub fn connect_v1(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_v1_with_timeout(addr, Duration::from_secs(10))
    }

    /// [`Client::connect_v1`] with an explicit timeout.
    pub fn connect_v1_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            version: 1,
            map: 0,
            next_corr: 0,
        })
    }

    /// `HELLO` exchange: a v2 server answers with the version it will
    /// speak; a v1 server answers the unknown opcode with a structured
    /// `UnknownOp` error, which downgrades this client to v1 silently.
    fn negotiate(&mut self) -> io::Result<()> {
        write_frame(
            &mut self.stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )?;
        match self.read_reply()? {
            (_, Reply::Hello { version }) => {
                self.version = version.clamp(1, PROTOCOL_VERSION);
                Ok(())
            }
            (
                _,
                Reply::Error {
                    code: ErrorCode::UnknownOp,
                    ..
                },
            ) => {
                self.version = 1;
                Ok(())
            }
            (_, Reply::Error { code, message }) => {
                Err(io::Error::other(ServerError { code, message }))
            }
            (_, other) => Err(unexpected(&other)),
        }
    }

    /// Whether this connection negotiated at least the v2 envelope
    /// (pipelining and server-side batching).
    pub fn is_v2(&self) -> bool {
        self.version >= 2
    }

    /// Whether this connection negotiated the v3 envelope (map routing
    /// and catalog ops).
    pub fn is_v3(&self) -> bool {
        self.version >= 3
    }

    /// The negotiated envelope version (1, 2 or 3).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Route every subsequent request to catalog map `map` (v3 only;
    /// ids come from [`Client::open_map`] / [`Client::list_maps`]).
    /// Errors on a pre-v3 connection unless `map` is `0`, the only map
    /// a v1/v2 envelope can address.
    pub fn set_map(&mut self, map: u32) -> io::Result<()> {
        if map != 0 && self.version < 3 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "map routing needs protocol v3; this connection negotiated v{}",
                    self.version
                ),
            ));
        }
        self.map = map;
        Ok(())
    }

    /// The map id current requests are routed to.
    pub fn current_map(&self) -> u32 {
        self.map
    }

    /// Encode `req` in this connection's negotiated envelope, stamping
    /// the current map on v3 frames.
    fn encode_request(&mut self, req: &Request) -> (Option<u32>, Vec<u8>) {
        if self.version >= 2 {
            let corr = self.next_corr;
            self.next_corr = self.next_corr.wrapping_add(1);
            let bytes = if self.version >= 3 {
                req.encode_v3(corr, self.map)
            } else {
                req.encode_v2(corr)
            };
            (Some(corr), bytes)
        } else {
            (None, req.encode())
        }
    }

    fn read_reply(&mut self) -> io::Result<(Option<u32>, Reply)> {
        let payload = match read_frame(&mut self.stream, MAX_REPLY_FRAME) {
            Ok(FrameEvent::Frame(p)) => p,
            Ok(FrameEvent::Eof) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                ))
            }
            Ok(FrameEvent::Idle) => {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "reply timed out"))
            }
            Err(FrameError::Oversized(n)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("oversized reply frame: {n} bytes"),
                ))
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        decode_reply(&payload).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("undecodable reply: {e}"),
            )
        })
    }

    /// Issue one request and wait for its reply. Error frames are
    /// returned as `Err`, so `Ok` replies are always answers.
    pub fn call(&mut self, req: &Request) -> io::Result<Reply> {
        let (corr, bytes) = self.encode_request(req);
        write_frame(&mut self.stream, &bytes)?;
        let (got, reply) = self.read_reply()?;
        if corr.is_some() && got != corr {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("correlation mismatch: sent {corr:?}, reply carries {got:?}"),
            ));
        }
        match reply {
            Reply::Error { code, message } => Err(io::Error::other(ServerError { code, message })),
            reply => Ok(reply),
        }
    }

    /// [`Client::call`] routed to map `map` for this one request; the
    /// current map is untouched. v3 only (unless `map` is `0`).
    pub fn call_on(&mut self, map: u32, req: &Request) -> io::Result<Reply> {
        let prev = self.map;
        self.set_map(map)?;
        let result = self.call(req);
        self.map = prev;
        result
    }

    /// Execute a homogeneous batch server-side (one `BATCH` frame,
    /// Morton-sorted execution) and return the per-item replies in
    /// submission order. Against a v1 server the batch is transparently
    /// unrolled into sequential singleton calls — same replies, same
    /// counters, no wire batching.
    ///
    /// Item-level failures (e.g. an out-of-range segment id under v1
    /// unrolling) stay inline as [`Reply::Error`] entries; only
    /// transport and whole-batch failures return `Err`.
    pub fn call_batch(&mut self, batch: &BatchRequest) -> io::Result<Vec<Reply>> {
        if self.version >= 2 {
            match self.call(&Request::Batch(batch.clone()))? {
                Reply::Batch(items) => Ok(items),
                other => Err(unexpected(&other)),
            }
        } else {
            let singles = unroll(batch);
            let mut out = Vec::with_capacity(singles.len());
            for req in &singles {
                out.push(self.call_keeping_errors(req)?);
            }
            Ok(out)
        }
    }

    /// Send every request before reading any reply, then return the
    /// replies in request order (matched by correlation id — the server
    /// may complete them out of order). Falls back to sequential calls
    /// on a v1 connection.
    ///
    /// Per-request error frames stay inline as [`Reply::Error`] entries,
    /// so one bad request does not mask the other replies.
    pub fn pipeline(&mut self, reqs: &[Request]) -> io::Result<Vec<Reply>> {
        if self.version < 2 {
            return reqs.iter().map(|r| self.call_keeping_errors(r)).collect();
        }
        let base = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(reqs.len() as u32);
        for (i, req) in reqs.iter().enumerate() {
            let corr = base.wrapping_add(i as u32);
            let bytes = if self.version >= 3 {
                req.encode_v3(corr, self.map)
            } else {
                req.encode_v2(corr)
            };
            write_frame(&mut self.stream, &bytes)?;
        }
        let mut out: Vec<Option<Reply>> = (0..reqs.len()).map(|_| None).collect();
        for _ in 0..reqs.len() {
            let (corr, reply) = self.read_reply()?;
            let slot = corr
                .and_then(|c| usize::try_from(c.wrapping_sub(base)).ok())
                .filter(|&i| i < out.len() && out[i].is_none());
            match slot {
                Some(i) => out[i] = Some(reply),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("reply carries unexpected correlation id {corr:?}"),
                    ))
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect())
    }

    /// [`Client::call`] but keeping server error frames inline as
    /// [`Reply::Error`] (batch/pipeline item semantics).
    fn call_keeping_errors(&mut self, req: &Request) -> io::Result<Reply> {
        match self.call(req) {
            Ok(reply) => Ok(reply),
            Err(e) => match e
                .get_ref()
                .and_then(|inner| inner.downcast_ref::<ServerError>())
            {
                Some(se) => Ok(Reply::Error {
                    code: se.code,
                    message: se.message.clone(),
                }),
                None => Err(e),
            },
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 1.
    #[deprecated(note = "use `call(&QueryRequest::incident(p).build())`")]
    pub fn incident(&mut self, p: Point) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&QueryRequest::incident(p).build())? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 2.
    #[deprecated(note = "use `call(&QueryRequest::second_endpoint(id, at).build())`")]
    pub fn second_endpoint(
        &mut self,
        id: SegId,
        at: Point,
    ) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&QueryRequest::second_endpoint(id, at).build())? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 3.
    #[deprecated(note = "use `call(&QueryRequest::nearest(p).build())`")]
    pub fn nearest(&mut self, p: Point) -> io::Result<(Option<SegId>, QueryStats)> {
        match self.call(&QueryRequest::nearest(p).build())? {
            Reply::Nearest { id, stats } => Ok((id, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ranked query 3.
    #[deprecated(note = "use `call(&QueryRequest::nearest_k(p, k).build())`")]
    pub fn nearest_k(&mut self, p: Point, k: u32) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&QueryRequest::nearest_k(p, k).build())? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 5.
    #[deprecated(note = "use `call(&QueryRequest::window(w).build())`")]
    pub fn window(&mut self, w: Rect) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&QueryRequest::window(w).build())? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 4: boundary edges in traversal order plus the closed flag.
    #[allow(clippy::type_complexity)]
    #[deprecated(note = "use `call(&QueryRequest::enclosing_polygon(p).max_steps(n).build())`")]
    pub fn enclosing_polygon(
        &mut self,
        p: Point,
        max_steps: u32,
    ) -> io::Result<(Option<(Vec<SegId>, bool)>, QueryStats)> {
        match self.call(
            &QueryRequest::enclosing_polygon(p)
                .max_steps(max_steps)
                .build(),
        )? {
            Reply::Polygon { walk, stats } => Ok((walk, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Durably insert a segment into the served index. Returns the id
    /// the segment received and the WAL commit LSN; the server only
    /// acknowledges after the op is durable.
    pub fn insert(&mut self, seg: Segment) -> io::Result<(SegId, u64)> {
        match self.call(&Request::Insert(seg))? {
            Reply::Inserted { id, lsn } => Ok((id, lsn)),
            other => Err(unexpected(&other)),
        }
    }

    /// Durably delete the segment with `id`. Returns whether it was
    /// indexed, plus the WAL commit LSN.
    pub fn delete(&mut self, id: SegId) -> io::Result<(bool, u64)> {
        match self.call(&Request::Delete { id })? {
            Reply::Deleted { removed, lsn } => Ok((removed, lsn)),
            other => Err(unexpected(&other)),
        }
    }

    /// Checkpoint the server's op log (fold the WAL into its base store
    /// and truncate it). Returns the LSN the checkpoint covered.
    pub fn flush(&mut self) -> io::Result<u64> {
        match self.call(&Request::Flush)? {
            Reply::Flushed { lsn } => Ok(lsn),
            other => Err(unexpected(&other)),
        }
    }

    /// Server-wide `(queries served, summed counters)`.
    ///
    /// On a v3 connection the server answers `STATS` with the full
    /// catalog shape; this helper folds it back to the aggregate pair.
    /// Use [`Client::stats_v3`] for the per-map breakdown.
    pub fn stats(&mut self) -> io::Result<(u64, QueryStats)> {
        match self.call(&Request::Stats)? {
            Reply::Stats { queries, totals } => Ok((queries, totals)),
            Reply::StatsV3 {
                queries, totals, ..
            } => Ok((queries, totals)),
            other => Err(unexpected(&other)),
        }
    }

    /// Catalog-aware `STATS`: process aggregates, the buffer-budget
    /// gauge, and per-map query/cache counters. Requires a v3 server.
    pub fn stats_v3(&mut self) -> io::Result<CatalogStats> {
        if self.version < 3 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "catalog stats need protocol v3; this connection negotiated v{}",
                    self.version
                ),
            ));
        }
        match self.call(&Request::Stats)? {
            Reply::StatsV3 {
                queries,
                totals,
                budget,
                maps,
            } => Ok(CatalogStats {
                queries,
                totals,
                budget,
                maps,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Open (or look up) the catalog map named `name`. Returns its map
    /// id — valid for [`Client::set_map`] / [`Client::call_on`] — and
    /// its segment count.
    pub fn open_map(&mut self, name: &str) -> io::Result<(u32, u64)> {
        match self.call(&Request::OpenMap { name: name.into() })? {
            Reply::MapOpened { id, len } => Ok((id, len)),
            other => Err(unexpected(&other)),
        }
    }

    /// Every map in the server's catalog, open or cold.
    pub fn list_maps(&mut self) -> io::Result<Vec<MapInfo>> {
        match self.call(&Request::ListMaps)? {
            Reply::MapList(maps) => Ok(maps),
            other => Err(unexpected(&other)),
        }
    }

    /// Close the named map's store (it reopens lazily on the next query
    /// routed to it). Returns whether it was open; refuses maps the
    /// server cannot rebuild.
    pub fn close_map(&mut self, name: &str) -> io::Result<bool> {
        match self.call(&Request::CloseMap { name: name.into() })? {
            Reply::MapClosed { was_open } => Ok(was_open),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and exit. The server acknowledges with
    /// `BYE` and then closes this connection.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Reply::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// The singleton requests a batch is defined to equal, in submission
/// order (the v1 fallback executes exactly these).
fn unroll(batch: &BatchRequest) -> Vec<Request> {
    match batch {
        BatchRequest::Incident(v) => v.iter().map(|&p| Request::Incident(p)).collect(),
        BatchRequest::Second(v) => v
            .iter()
            .map(|&(id, at)| Request::Second { id, at })
            .collect(),
        BatchRequest::Nearest(v) => v.iter().map(|&p| Request::Nearest(p)).collect(),
        BatchRequest::Knn(v) => v.iter().map(|&(at, k)| Request::Knn { at, k }).collect(),
        BatchRequest::Window(v) => v.iter().map(|&w| Request::Window(w)).collect(),
        BatchRequest::Polygon { points, max_steps } => points
            .iter()
            .map(|&at| Request::Polygon {
                at,
                max_steps: *max_steps,
            })
            .collect(),
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("reply does not match the request: {reply:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_builds_every_wire_shape() {
        assert_eq!(
            QueryRequest::incident(Point::new(1, 2)).build(),
            Request::Incident(Point::new(1, 2))
        );
        assert_eq!(
            QueryRequest::second_endpoint(SegId(7), Point::new(3, 4)).build(),
            Request::Second {
                id: SegId(7),
                at: Point::new(3, 4)
            }
        );
        assert_eq!(
            QueryRequest::nearest(Point::new(5, 6)).build(),
            Request::Nearest(Point::new(5, 6))
        );
        assert_eq!(
            QueryRequest::nearest_k(Point::new(5, 6), 9).build(),
            Request::Knn {
                at: Point::new(5, 6),
                k: 9
            }
        );
        assert_eq!(
            QueryRequest::window(Rect::new(0, 0, 4, 4)).build(),
            Request::Window(Rect::new(0, 0, 4, 4))
        );
        assert_eq!(
            QueryRequest::enclosing_polygon(Point::new(8, 8))
                .max_steps(77)
                .build(),
            Request::Polygon {
                at: Point::new(8, 8),
                max_steps: 77
            }
        );
        // max_steps on a non-polygon request is inert, not a panic.
        assert_eq!(
            QueryRequest::nearest(Point::new(0, 0)).max_steps(5).build(),
            Request::Nearest(Point::new(0, 0))
        );
        let via_from: Request = QueryRequest::incident(Point::new(1, 1)).into();
        assert_eq!(via_from, Request::Incident(Point::new(1, 1)));
    }

    #[test]
    fn unroll_matches_batch_semantics() {
        let batch = BatchRequest::Polygon {
            points: vec![Point::new(1, 1), Point::new(2, 2)],
            max_steps: 42,
        };
        assert_eq!(
            unroll(&batch),
            vec![
                Request::Polygon {
                    at: Point::new(1, 1),
                    max_steps: 42
                },
                Request::Polygon {
                    at: Point::new(2, 2),
                    max_steps: 42
                },
            ]
        );
        assert_eq!(unroll(&BatchRequest::Window(vec![])).len(), 0);
    }
}
