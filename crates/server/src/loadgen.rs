//! Closed-loop load generator for the wire protocol.
//!
//! Mirrors the in-process parallel driver: the request stream is split
//! into contiguous chunks, one connection (and thread) per chunk, each
//! issuing its requests back-to-back and waiting for every reply. Because
//! the server charges each query to its own context, the summed counters
//! are chunk-order independent — identical to running the same stream
//! in-process.

use crate::client::Client;
use crate::protocol::{Reply, Request};
use lsdb_core::QueryStats;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What one closed-loop run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests issued (every one was answered).
    pub queries: usize,
    /// Connections (= client threads) used.
    pub connections: usize,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Per-request latencies, sorted ascending (basis of the percentiles).
    pub latencies: Vec<Duration>,
    /// Summed per-query counters reported by the server.
    pub totals: QueryStats,
    /// Summed result cardinalities (segments / boundary steps).
    pub result_items: u64,
}

impl LoadReport {
    /// Overall request throughput.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.queries as f64 / self.wall.as_secs_f64()
    }

    /// Latency at quantile `q` in `[0, 1]` (nearest-rank).
    pub fn latency_at(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank =
            ((q * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }

    pub fn p50(&self) -> Duration {
        self.latency_at(0.50)
    }

    pub fn p95(&self) -> Duration {
        self.latency_at(0.95)
    }

    pub fn p99(&self) -> Duration {
        self.latency_at(0.99)
    }

    pub fn p999(&self) -> Duration {
        self.latency_at(0.999)
    }

    pub fn max_latency(&self) -> Duration {
        self.latencies.last().copied().unwrap_or(Duration::ZERO)
    }
}

/// Drive `requests` against the server at `addr` over `connections`
/// parallel closed-loop connections. Service ops are legal in the stream
/// but contribute no counters.
pub fn run_closed_loop(
    addr: SocketAddr,
    requests: &[Request],
    connections: usize,
) -> io::Result<LoadReport> {
    let connections = connections.max(1).min(requests.len().max(1));
    let chunk_len = requests.len().div_ceil(connections);
    let start = Instant::now();
    let partials: Vec<io::Result<ChunkResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk_len.max(1))
            .map(|chunk| scope.spawn(move || run_chunk(addr, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load generator thread"))
            .collect()
    });
    let wall = start.elapsed();

    let mut report = LoadReport {
        connections,
        wall,
        ..LoadReport::default()
    };
    for partial in partials {
        let p = partial?;
        report.queries += p.latencies.len();
        report.latencies.extend(p.latencies);
        report.totals.add(p.totals);
        report.result_items += p.result_items;
    }
    report.latencies.sort();
    Ok(report)
}

/// [`run_closed_loop`], but every request is routed to its own catalog
/// map over the v3 envelope. The closed-loop counterpart of
/// [`run_open_loop_routed`]: no arrival schedule, each connection
/// issues its chunk back-to-back — the mode hit-rate curves want, where
/// the interesting variable is the cache, not a QPS target. Requires a
/// v3 server.
pub fn run_closed_loop_routed(
    addr: SocketAddr,
    requests: &[(u32, Request)],
    connections: usize,
) -> io::Result<LoadReport> {
    let connections = connections.max(1).min(requests.len().max(1));
    let chunk_len = requests.len().div_ceil(connections);
    let start = Instant::now();
    let partials: Vec<io::Result<ChunkResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk_len.max(1))
            .map(|chunk| scope.spawn(move || run_routed_chunk(addr, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load generator thread"))
            .collect()
    });
    let wall = start.elapsed();

    let mut report = LoadReport {
        connections,
        wall,
        ..LoadReport::default()
    };
    for partial in partials {
        let p = partial?;
        report.queries += p.latencies.len();
        report.latencies.extend(p.latencies);
        report.totals.add(p.totals);
        report.result_items += p.result_items;
    }
    report.latencies.sort();
    Ok(report)
}

struct ChunkResult {
    latencies: Vec<Duration>,
    totals: QueryStats,
    result_items: u64,
}

fn run_routed_chunk(addr: SocketAddr, chunk: &[(u32, Request)]) -> io::Result<ChunkResult> {
    let mut client = Client::connect(addr)?;
    let mut out = ChunkResult {
        latencies: Vec::with_capacity(chunk.len()),
        totals: QueryStats::default(),
        result_items: 0,
    };
    for (map, req) in chunk {
        let t0 = Instant::now();
        let reply = client.call_on(*map, req)?;
        out.latencies.push(t0.elapsed());
        if let Some(stats) = reply.stats() {
            out.totals.add(stats);
        }
        out.result_items += reply.result_size() as u64;
        if matches!(reply, Reply::Bye) {
            break;
        }
    }
    Ok(out)
}

fn run_chunk(addr: SocketAddr, chunk: &[Request]) -> io::Result<ChunkResult> {
    let mut client = Client::connect(addr)?;
    let mut out = ChunkResult {
        latencies: Vec::with_capacity(chunk.len()),
        totals: QueryStats::default(),
        result_items: 0,
    };
    for req in chunk {
        let t0 = Instant::now();
        let reply = client.call(req)?;
        out.latencies.push(t0.elapsed());
        if let Some(stats) = reply.stats() {
            out.totals.add(stats);
        }
        out.result_items += reply.result_size() as u64;
        if matches!(reply, Reply::Bye) {
            break;
        }
    }
    Ok(out)
}

/// Drive `requests` at a *fixed arrival rate* of `target_qps`, spread
/// round-robin over `connections` pipelined v2 connections. Each
/// connection runs a sender thread (writes frames on the global
/// schedule, never waiting for replies) and a reader thread (matches
/// replies by correlation id), so a slow query delays nothing behind it.
///
/// Latency is measured from each request's *scheduled* send time — if
/// the sender falls behind, the queueing delay is charged to the
/// request rather than silently dropped (no coordinated omission). The
/// tail percentiles ([`LoadReport::p99`], [`LoadReport::p999`]) are the
/// point of this mode; requires a v2 server (replies are matched by
/// correlation id).
pub fn run_open_loop(
    addr: SocketAddr,
    requests: &[Request],
    connections: usize,
    target_qps: f64,
) -> io::Result<LoadReport> {
    open_loop_impl(
        addr,
        &requests.iter().map(|r| (0u32, r)).collect::<Vec<_>>(),
        connections,
        target_qps,
        Wire::V2,
    )
}

/// [`run_open_loop`], but every request is routed to its own catalog map
/// over the v3 envelope — the multi-map serving benchmark: one arrival
/// schedule, one connection pool, requests fanned across maps exactly as
/// a mixed tenant population would issue them. Requires a v3 server.
pub fn run_open_loop_routed(
    addr: SocketAddr,
    requests: &[(u32, Request)],
    connections: usize,
    target_qps: f64,
) -> io::Result<LoadReport> {
    open_loop_impl(
        addr,
        &requests.iter().map(|(m, r)| (*m, r)).collect::<Vec<_>>(),
        connections,
        target_qps,
        Wire::V3,
    )
}

/// Which envelope the open-loop lanes speak.
#[derive(Clone, Copy)]
enum Wire {
    V2,
    V3,
}

fn open_loop_impl(
    addr: SocketAddr,
    requests: &[(u32, &Request)],
    connections: usize,
    target_qps: f64,
    wire: Wire,
) -> io::Result<LoadReport> {
    if !target_qps.is_finite() || target_qps <= 0.0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "target_qps must be positive",
        ));
    }
    let connections = connections.max(1).min(requests.len().max(1));
    let period = Duration::from_secs_f64(1.0 / target_qps);

    // Connection c owns requests c, c+connections, ... — the global
    // schedule interleaves evenly across connections.
    let lanes: Vec<Vec<(Duration, u32, &Request)>> = (0..connections)
        .map(|c| {
            requests
                .iter()
                .enumerate()
                .skip(c)
                .step_by(connections)
                .map(|(i, &(map, req))| (period * i as u32, map, req))
                .collect()
        })
        .collect();

    let start = Instant::now();
    let partials: Vec<io::Result<ChunkResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .iter()
            .map(|lane| scope.spawn(move || run_lane(addr, lane, start, wire)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load generator thread"))
            .collect()
    });
    let wall = start.elapsed();

    let mut report = LoadReport {
        connections,
        wall,
        ..LoadReport::default()
    };
    for partial in partials {
        let p = partial?;
        report.queries += p.latencies.len();
        report.latencies.extend(p.latencies);
        report.totals.add(p.totals);
        report.result_items += p.result_items;
    }
    report.latencies.sort();
    Ok(report)
}

/// One open-loop connection: a sender honoring the schedule and a reader
/// correlating replies, racing on a split stream.
fn run_lane(
    addr: SocketAddr,
    lane: &[(Duration, u32, &Request)],
    start: Instant,
    wire: Wire,
) -> io::Result<ChunkResult> {
    use crate::protocol::{decode_reply, read_frame, write_frame, FrameError, FrameEvent};

    if lane.is_empty() {
        return Ok(ChunkResult {
            latencies: Vec::new(),
            totals: QueryStats::default(),
            result_items: 0,
        });
    }
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut write_half = stream.try_clone()?;
    let mut read_half = stream;

    std::thread::scope(|scope| {
        let sender = scope.spawn(move || -> io::Result<()> {
            // Correlation id = index into this lane, so the reader can
            // find the scheduled time without shared state.
            for (corr, (sched, map, req)) in lane.iter().enumerate() {
                let due = start + *sched;
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let bytes = match wire {
                    Wire::V2 => req.encode_v2(corr as u32),
                    Wire::V3 => req.encode_v3(corr as u32, *map),
                };
                write_frame(&mut write_half, &bytes)?;
            }
            Ok(())
        });

        let mut out = ChunkResult {
            latencies: vec![Duration::ZERO; lane.len()],
            totals: QueryStats::default(),
            result_items: 0,
        };
        let mut read_one = || -> io::Result<(Option<u32>, Reply)> {
            loop {
                match read_frame(&mut read_half, crate::protocol::MAX_REPLY_FRAME) {
                    Ok(FrameEvent::Frame(p)) => {
                        return decode_reply(&p)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                    }
                    Ok(FrameEvent::Eof) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed mid-run",
                        ))
                    }
                    Ok(FrameEvent::Idle) => continue,
                    Err(FrameError::Oversized(n)) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("oversized reply frame: {n} bytes"),
                        ))
                    }
                    Err(FrameError::Io(e)) => return Err(e),
                }
            }
        };
        let reader_result = (|| -> io::Result<()> {
            for _ in 0..lane.len() {
                let (corr, reply) = read_one()?;
                let Some(slot) = corr.map(|c| c as usize).filter(|&i| i < lane.len()) else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "reply without a known correlation id",
                    ));
                };
                // Open-loop latency: now minus *scheduled* send time.
                out.latencies[slot] = (start + lane[slot].0).elapsed();
                if let Some(stats) = reply.stats() {
                    out.totals.add(stats);
                }
                out.result_items += reply.result_size() as u64;
            }
            Ok(())
        })();

        sender.join().expect("open-loop sender thread")?;
        reader_result?;
        Ok(out)
    })
}
