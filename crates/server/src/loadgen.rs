//! Closed-loop load generator for the wire protocol.
//!
//! Mirrors the in-process parallel driver: the request stream is split
//! into contiguous chunks, one connection (and thread) per chunk, each
//! issuing its requests back-to-back and waiting for every reply. Because
//! the server charges each query to its own context, the summed counters
//! are chunk-order independent — identical to running the same stream
//! in-process.

use crate::client::Client;
use crate::protocol::{Reply, Request};
use lsdb_core::QueryStats;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What one closed-loop run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests issued (every one was answered).
    pub queries: usize,
    /// Connections (= client threads) used.
    pub connections: usize,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Per-request latencies, sorted ascending (basis of the percentiles).
    pub latencies: Vec<Duration>,
    /// Summed per-query counters reported by the server.
    pub totals: QueryStats,
    /// Summed result cardinalities (segments / boundary steps).
    pub result_items: u64,
}

impl LoadReport {
    /// Overall request throughput.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.queries as f64 / self.wall.as_secs_f64()
    }

    /// Latency at quantile `q` in `[0, 1]` (nearest-rank).
    pub fn latency_at(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank =
            ((q * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }

    pub fn p50(&self) -> Duration {
        self.latency_at(0.50)
    }

    pub fn p95(&self) -> Duration {
        self.latency_at(0.95)
    }

    pub fn p99(&self) -> Duration {
        self.latency_at(0.99)
    }

    pub fn max_latency(&self) -> Duration {
        self.latencies.last().copied().unwrap_or(Duration::ZERO)
    }
}

/// Drive `requests` against the server at `addr` over `connections`
/// parallel closed-loop connections. Service ops are legal in the stream
/// but contribute no counters.
pub fn run_closed_loop(
    addr: SocketAddr,
    requests: &[Request],
    connections: usize,
) -> io::Result<LoadReport> {
    let connections = connections.max(1).min(requests.len().max(1));
    let chunk_len = requests.len().div_ceil(connections);
    let start = Instant::now();
    let partials: Vec<io::Result<ChunkResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk_len.max(1))
            .map(|chunk| scope.spawn(move || run_chunk(addr, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load generator thread"))
            .collect()
    });
    let wall = start.elapsed();

    let mut report = LoadReport {
        connections,
        wall,
        ..LoadReport::default()
    };
    for partial in partials {
        let p = partial?;
        report.queries += p.latencies.len();
        report.latencies.extend(p.latencies);
        report.totals.add(p.totals);
        report.result_items += p.result_items;
    }
    report.latencies.sort();
    Ok(report)
}

struct ChunkResult {
    latencies: Vec<Duration>,
    totals: QueryStats,
    result_items: u64,
}

fn run_chunk(addr: SocketAddr, chunk: &[Request]) -> io::Result<ChunkResult> {
    let mut client = Client::connect(addr)?;
    let mut out = ChunkResult {
        latencies: Vec::with_capacity(chunk.len()),
        totals: QueryStats::default(),
        result_items: 0,
    };
    for req in chunk {
        let t0 = Instant::now();
        let reply = client.call(req)?;
        out.latencies.push(t0.elapsed());
        if let Some(stats) = reply.stats() {
            out.totals.add(stats);
        }
        out.result_items += reply.result_size() as u64;
        if matches!(reply, Reply::Bye) {
            break;
        }
    }
    Ok(out)
}
