//! The serving loop: a fixed pool of scoped worker threads over one
//! shared-read index.
//!
//! One acceptor thread hands inbound connections to a bounded worker pool
//! through an mpsc channel; each worker serves one connection at a time,
//! running every request through the PR-1 query path with its own
//! [`QueryCtx`] and folding the per-query counters into a
//! [`SharedStats`] aggregate (what the `STATS` op reports). Shutdown is
//! graceful: a `SHUTDOWN` request (or [`ShutdownHandle::shutdown`]) stops
//! the acceptor, in-flight requests run to completion and are answered,
//! and every worker exits once its connection closes or goes idle.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, FrameEvent, Reply, Request, MAX_REQUEST_FRAME,
};
use lsdb_core::{queries, QueryCtx, QueryStats, SharedStats, SpatialIndex};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Per-connection read timeout. Also the cadence at which a worker
    /// blocked on an idle connection notices a shutdown, so keep it small
    /// when fast drain matters.
    pub read_timeout: Duration,
    /// Per-connection write timeout (a stalled reader cannot wedge a
    /// worker forever).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// What a finished server reports: the same aggregates `STATS` serves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Spatial queries answered (service ops excluded).
    pub queries: u64,
    /// Summed per-query counters — a plain sum of [`QueryCtx`] snapshots,
    /// so identical to what a sequential in-process run would total.
    pub totals: QueryStats,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

/// Flips the server's drain flag from outside the wire protocol (e.g. an
/// embedding process that wants to stop serving without a client).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_shutting_down(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    index: Box<dyn SpatialIndex>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port). The index must
    /// already be built — the server is strictly build-once/serve-many.
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: Box<dyn SpatialIndex>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            index,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can trigger a drain from outside the protocol.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serve until shutdown, then return the lifetime aggregates. Blocks
    /// the calling thread; spawn it on a thread if the caller must keep
    /// running.
    pub fn run(self) -> io::Result<ServerReport> {
        let Server {
            listener,
            index,
            config,
            shutdown,
        } = self;
        listener.set_nonblocking(true)?;
        let stats = SharedStats::new();
        let connections = std::sync::atomic::AtomicU64::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);

        let shared = Shared {
            index: index.as_ref(),
            stats: &stats,
            shutdown: &shutdown,
            config: &config,
        };

        std::thread::scope(|scope| {
            for _ in 0..config.workers.max(1) {
                let rx = &rx;
                let shared = &shared;
                scope.spawn(move || worker_loop(rx, shared));
            }
            // The acceptor runs on this thread; dropping `tx` afterwards
            // disconnects the channel and lets drained workers exit.
            accept_loop(&listener, tx, &connections, &shutdown);
        });

        Ok(ServerReport {
            queries: stats.queries(),
            totals: stats.snapshot(),
            connections: connections.load(Ordering::Relaxed),
        })
    }
}

/// Everything a worker needs, borrowed for the scope of [`Server::run`].
struct Shared<'a> {
    index: &'a dyn SpatialIndex,
    stats: &'a SharedStats,
    shutdown: &'a AtomicBool,
    config: &'a ServerConfig,
}

fn accept_loop(
    listener: &TcpListener,
    tx: Sender<TcpStream>,
    connections: &std::sync::atomic::AtomicU64,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections.fetch_add(1, Ordering::Relaxed);
                if tx.send(stream).is_err() {
                    break; // workers are gone; nothing left to serve
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break, // listener broke; drain and exit
        }
    }
    // Dropping `tx` here refuses queued-but-unaccepted clients and ends
    // the workers' recv loop once the accepted backlog drains.
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared) {
    loop {
        // Hold the lock only for the dequeue, not while serving.
        let next = {
            let rx = rx.lock().unwrap();
            rx.recv_timeout(Duration::from_millis(50))
        };
        match next {
            Ok(stream) => {
                // Connection-level failures (timeout stalls, resets) only
                // kill this one connection.
                let _ = serve_connection(stream, shared);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Acceptor may still hold `tx` for an instant, but no
                    // new work is coming once the flag is up and the queue
                    // is empty.
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection to completion. Protocol errors are answered with
/// structured error frames; only transport failures and unrecoverable
/// framing (oversized declarations) close the connection.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    stream.set_nodelay(true).ok();
    let mut stream = stream;
    let mut ctx = QueryCtx::new();
    loop {
        match read_frame(&mut stream, MAX_REQUEST_FRAME) {
            Ok(FrameEvent::Frame(payload)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let reply = Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".into(),
                    };
                    let _ = write_frame(&mut stream, &reply.encode());
                    return Ok(());
                }
                let (reply, hangup) = match Request::decode(&payload) {
                    Ok(req) => handle_request(req, shared, &mut ctx),
                    Err(e) => (
                        Reply::Error {
                            code: e.code(),
                            message: e.to_string(),
                        },
                        false, // framing is intact; keep the connection
                    ),
                };
                write_frame(&mut stream, &reply.encode())?;
                if hangup {
                    return Ok(());
                }
            }
            Ok(FrameEvent::Eof) => return Ok(()),
            Ok(FrameEvent::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(FrameError::Oversized(n)) => {
                let reply = Reply::Error {
                    code: ErrorCode::Oversized,
                    message: format!(
                        "frame of {n} bytes exceeds the {MAX_REQUEST_FRAME}-byte request limit"
                    ),
                };
                // The bogus payload was never consumed, so the stream
                // cannot be re-synchronized: reply, then hang up. Drain
                // (bounded) what the peer already sent first — closing
                // with unread bytes raises a TCP reset that would destroy
                // the error frame before the client reads it.
                let _ = write_frame(&mut stream, &reply.encode());
                drain(&mut stream, n.min(1 << 20) as usize);
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
        }
    }
}

/// Best-effort discard of up to `n` pending bytes before a close.
fn drain(stream: &mut TcpStream, mut n: usize) {
    let mut scratch = [0u8; 4096];
    while n > 0 {
        let take = n.min(scratch.len());
        match io::Read::read(stream, &mut scratch[..take]) {
            Ok(0) | Err(_) => return,
            Ok(got) => n -= got,
        }
    }
}

/// Execute one request. Returns the reply and whether the connection
/// should close afterwards (only after acknowledging `SHUTDOWN`).
fn handle_request(req: Request, shared: &Shared, ctx: &mut QueryCtx) -> (Reply, bool) {
    let index = shared.index;
    ctx.reset();
    let reply = match req {
        Request::Ping => return (Reply::Pong, false),
        Request::Stats => {
            return (
                Reply::Stats {
                    queries: shared.stats.queries(),
                    totals: shared.stats.snapshot(),
                },
                false,
            )
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            return (Reply::Bye, true);
        }
        Request::Incident(p) => Reply::Segs {
            ids: index.find_incident(p, ctx),
            stats: ctx.stats(),
        },
        Request::Second { id, at } => {
            if id.index() >= index.len() {
                return (
                    Reply::Error {
                        code: ErrorCode::BadArgument,
                        message: format!(
                            "segment id {} out of range (map has {} segments)",
                            id.0,
                            index.len()
                        ),
                    },
                    false,
                );
            }
            Reply::Segs {
                ids: queries::second_endpoint(index, id, at, ctx),
                stats: ctx.stats(),
            }
        }
        Request::Nearest(p) => Reply::Nearest {
            id: index.nearest(p, ctx),
            stats: ctx.stats(),
        },
        Request::Knn { at, k } => Reply::Segs {
            ids: index.nearest_k(at, k as usize, ctx),
            stats: ctx.stats(),
        },
        Request::Window(w) => Reply::Segs {
            ids: index.window(w, ctx),
            stats: ctx.stats(),
        },
        Request::Polygon { at, max_steps } => {
            let walk = queries::enclosing_polygon(index, at, max_steps as usize, ctx);
            Reply::Polygon {
                walk: walk.map(|w| (w.boundary, w.closed)),
                stats: ctx.stats(),
            }
        }
    };
    // Only genuine spatial queries reach here: fold their counters into
    // the server-wide aggregate the `STATS` op reports.
    shared.stats.add(ctx.stats());
    (reply, false)
}
