//! The serving backbone: one readiness-driven I/O thread multiplexing
//! every connection, plus a fixed executor pool running the queries.
//!
//! [`Server::run`] spawns `workers` executor threads (each owning a warm
//! [`lsdb_core::QueryCtx`]) and then runs the event loop on
//! the calling thread. The loop accepts, frames, and decodes; spatial
//! work crosses to the executors over a channel and encoded replies come
//! back over another, so a single I/O thread supports thousands of
//! pipelined connections. Per-query counters fold into both the queried
//! map's [`lsdb_core::SharedStats`] and the catalog-wide aggregate (what
//! the `STATS` op reports), exactly as the in-process parallel driver
//! folds them — totals are independent of connection count, pipelining
//! depth, or batch shape. Shutdown is
//! graceful: a `SHUTDOWN` request (or [`ShutdownHandle::shutdown`]) stops
//! the acceptor, owed replies flush, and every thread exits.

use crate::catalog::Catalog;
use crate::event_loop;
use crate::executor::{self, Completion, Job};
use crate::protocol::MAX_REQUEST_FRAME_V2;
use crate::sys::WakePipe;
use lsdb_core::{LiveIndex, QueryStats, SpatialIndex};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for [`Server`]. Construct via [`ServerConfig::builder`]
/// (validated), [`ServerConfig::from_env`] (documented `LSDB_*`
/// variables), or struct-literal update syntax over
/// [`ServerConfig::default`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Executor worker threads (the I/O thread is extra and fixed at
    /// one). Each worker runs one query or batch at a time.
    pub workers: usize,
    /// Poll cadence for noticing an out-of-band shutdown on an otherwise
    /// idle server; also the idle-read cadence a v1 client observes.
    /// Keep it small when fast drain matters.
    pub read_timeout: Duration,
    /// How long a peer may refuse to accept a byte of a pending reply
    /// before its connection is dropped (a stalled reader cannot wedge
    /// the server).
    pub write_timeout: Duration,
    /// Largest request frame accepted, in bytes. Batches need room
    /// (default [`MAX_REQUEST_FRAME_V2`]); singleton-only deployments
    /// can pin this down to harden against garbage.
    pub max_request_frame: u32,
    /// Emit a periodic one-line serving summary on stderr (budget
    /// residency, page evictions, reply-cache hits/misses). Off by
    /// default; `serve --verbose` turns it on.
    pub verbose: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
            max_request_frame: MAX_REQUEST_FRAME_V2,
            verbose: false,
        }
    }
}

impl ServerConfig {
    /// A validated builder over the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// Defaults overridden by whichever environment variables parse
    /// cleanly — the one documented place server knobs read the
    /// environment:
    ///
    /// | variable | field | unit |
    /// |---|---|---|
    /// | `LSDB_SERVER_WORKERS` | `workers` | threads |
    /// | `LSDB_THREADS` | `workers` (fallback) | threads |
    /// | `LSDB_SERVER_READ_TIMEOUT_MS` | `read_timeout` | milliseconds |
    /// | `LSDB_SERVER_WRITE_TIMEOUT_MS` | `write_timeout` | milliseconds |
    /// | `LSDB_SERVER_MAX_FRAME` | `max_request_frame` | bytes |
    /// | `LSDB_SERVER_VERBOSE` | `verbose` | `1`/`true` = on |
    ///
    /// `LSDB_THREADS` is shared with the bench crate's `WorkloadConfig`
    /// so one variable sizes both in-process and served parallelism.
    /// Invalid values (unparsable, zero) fall back to the default.
    pub fn from_env() -> ServerConfig {
        fn parse<T: std::str::FromStr>(var: &str) -> Option<T> {
            std::env::var(var).ok().and_then(|s| s.parse().ok())
        }
        let mut cfg = ServerConfig::default();
        if let Some(w) = parse::<usize>("LSDB_SERVER_WORKERS").or_else(|| parse("LSDB_THREADS")) {
            if w > 0 {
                cfg.workers = w;
            }
        }
        if let Some(ms) = parse::<u64>("LSDB_SERVER_READ_TIMEOUT_MS") {
            if ms > 0 {
                cfg.read_timeout = Duration::from_millis(ms);
            }
        }
        if let Some(ms) = parse::<u64>("LSDB_SERVER_WRITE_TIMEOUT_MS") {
            if ms > 0 {
                cfg.write_timeout = Duration::from_millis(ms);
            }
        }
        if let Some(n) = parse::<u32>("LSDB_SERVER_MAX_FRAME") {
            if n > 0 {
                cfg.max_request_frame = n;
            }
        }
        if let Ok(v) = std::env::var("LSDB_SERVER_VERBOSE") {
            cfg.verbose = v == "1" || v.eq_ignore_ascii_case("true");
        }
        cfg
    }

    /// The invariants [`ServerConfigBuilder::build`] and
    /// [`Server::bind`] enforce.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError("workers must be at least 1"));
        }
        if self.max_request_frame == 0 {
            return Err(ConfigError("max_request_frame must be at least 1 byte"));
        }
        if self.read_timeout.is_zero() {
            return Err(ConfigError("read_timeout must be nonzero"));
        }
        if self.write_timeout.is_zero() {
            return Err(ConfigError("write_timeout must be nonzero"));
        }
        Ok(())
    }
}

/// A rejected [`ServerConfig`] invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigError(&'static str);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid server config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for io::Error {
    fn from(e: ConfigError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidInput, e)
    }
}

/// Builder for [`ServerConfig`]; [`ServerConfigBuilder::build`] rejects
/// nonsense (zero workers, zero frame cap, zero timeouts).
#[derive(Clone, Debug)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.config.read_timeout = t;
        self
    }

    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.config.write_timeout = t;
        self
    }

    pub fn max_request_frame(mut self, bytes: u32) -> Self {
        self.config.max_request_frame = bytes;
        self
    }

    pub fn verbose(mut self, on: bool) -> Self {
        self.config.verbose = on;
        self
    }

    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// What a finished server reports: the same aggregates `STATS` serves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Spatial queries answered (service ops excluded; each batch item
    /// counts as one query).
    pub queries: u64,
    /// Summed per-query counters — a plain sum of [`lsdb_core::QueryCtx`]
    /// snapshots, so identical to what a sequential in-process run would
    /// total.
    pub totals: QueryStats,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

/// Flips the server's drain flag from outside the wire protocol (e.g. an
/// embedding process that wants to stop serving without a client).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_shutting_down(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    catalog: Catalog,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port), serving an
    /// already-built index with a *volatile* op log: `INSERT`/`DELETE`
    /// work but persist nothing. Rejects an invalid `config` with
    /// `InvalidInput`. For a durable store use [`Server::bind_live`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: Box<dyn SpatialIndex>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_live(addr, LiveIndex::volatile(index), config)
    }

    /// Bind to `addr` serving a [`LiveIndex`] — typically one recovered
    /// from a durable op log, so acknowledged mutations survive a crash.
    /// The index becomes map `0` ("default") of a one-map catalog, so
    /// every protocol version behaves exactly as the single-map server
    /// did.
    pub fn bind_live(
        addr: impl ToSocketAddrs,
        index: LiveIndex,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_catalog(addr, Catalog::single(index), config)
    }

    /// Bind to `addr` serving a whole [`Catalog`] of maps: v3 requests
    /// route by map id, v1/v2 requests land on map `0`.
    pub fn bind_catalog(
        addr: impl ToSocketAddrs,
        catalog: Catalog,
        config: ServerConfig,
    ) -> io::Result<Server> {
        config.validate()?;
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            catalog,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can trigger a drain from outside the protocol.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serve until shutdown, then return the lifetime aggregates. Blocks
    /// the calling thread (which becomes the I/O thread); spawn it on a
    /// thread if the caller must keep running.
    pub fn run(self) -> io::Result<ServerReport> {
        let Server {
            listener,
            catalog,
            config,
            shutdown,
        } = self;
        let connections = AtomicU64::new(0);
        let wake = WakePipe::new()?;
        let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Completion>();
        let job_rx = Mutex::new(job_rx);

        let shared = Shared {
            catalog: &catalog,
            shutdown: &shutdown,
            config: &config,
        };

        let result = std::thread::scope(|scope| {
            for _ in 0..config.workers {
                let job_rx = &job_rx;
                let shared = &shared;
                let done_tx = done_tx.clone();
                let wake = &wake;
                scope.spawn(move || executor::worker_loop(job_rx, shared, &done_tx, wake));
            }
            drop(done_tx); // workers hold the only senders now
                           // The event loop runs here; dropping `job_tx` when it exits
                           // disconnects the channel and terminates the workers.
            event_loop::run(listener, &shared, job_tx, done_rx, &wake, &connections)
        });
        result?;

        Ok(ServerReport {
            queries: catalog.aggregate().queries(),
            totals: catalog.aggregate().snapshot(),
            connections: connections.load(Ordering::Relaxed),
        })
    }
}

/// Everything the event loop and executors share, borrowed for the scope
/// of [`Server::run`].
pub(crate) struct Shared<'a> {
    pub catalog: &'a Catalog,
    pub shutdown: &'a AtomicBool,
    pub config: &'a ServerConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        let cfg = ServerConfig::builder()
            .workers(2)
            .read_timeout(Duration::from_millis(50))
            .max_request_frame(1024)
            .build()
            .unwrap();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.max_request_frame, 1024);

        assert!(ServerConfig::builder().workers(0).build().is_err());
        assert!(ServerConfig::builder()
            .max_request_frame(0)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .read_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .write_timeout(Duration::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn config_error_converts_to_invalid_input() {
        let e: io::Error = ConfigError("nope").into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn default_config_is_valid() {
        ServerConfig::default().validate().unwrap();
        ServerConfig::from_env().validate().unwrap();
    }
}
