//! `lsdb-server` — a concurrent TCP query service over the shared-read
//! line-segment index engine.
//!
//! The paper's evaluation is batch-shaped: build an index, run the query
//! workloads, read the counters. This crate adds the build-once/serve-many
//! layer a production deployment needs: the index is built once, stays
//! resident, and a readiness-driven event loop multiplexes every client
//! connection over one I/O thread while a fixed executor pool answers
//! queries — every request running through the `&self` query path with
//! its own [`lsdb_core::QueryCtx`], exactly as the in-process parallel
//! driver does. Remote answers and per-query counters are therefore
//! byte-identical to in-process execution; the wire only adds latency,
//! which the bundled load generators (closed- and open-loop) measure.
//!
//! The wire API is versioned: v1 frames (one request, one positional
//! reply) keep working unchanged, while v2 frames add correlation ids —
//! so one connection can pipeline many requests and receive replies out
//! of order — and a `BATCH` op carrying a homogeneous query vector that
//! the server executes Morton-sorted to keep per-context caches warm.
//!
//! The index is live, not frozen: `INSERT`, `DELETE`, and `FLUSH` route
//! through a [`lsdb_core::LiveIndex`] — each mutation is committed to a
//! write-ahead log *before* it is applied or acknowledged, concurrent
//! readers proceed under a shared lock, and `FLUSH` checkpoints the log.
//! Servers bound over a durable store ([`Server::bind_live`]) replay the
//! op log on restart, so acknowledged mutations survive a crash.
//!
//! * [`protocol`] — frame format, v1/v2 request/reply codec (never
//!   panics on malformed bytes),
//! * [`server`] — event loop + executor pool, graceful drain on
//!   `SHUTDOWN`,
//! * [`client`] — blocking one-connection client with version
//!   negotiation, batching, and pipelining,
//! * [`loadgen`] — closed- and open-loop throughput/latency drivers.

pub mod client;
mod conn;
mod event_loop;
mod executor;
pub mod loadgen;
pub mod protocol;
pub mod server;
mod sys;

pub use client::{Client, QueryRequest, ServerError};
pub use loadgen::{run_closed_loop, run_open_loop, LoadReport};
pub use protocol::{
    decode_reply, decode_request, DecodeFailure, ErrorCode, FrameError, FrameEvent, ProtoError,
    Reply, Request, RequestFrame, MAX_BATCH_ITEMS, MAX_REPLY_FRAME, MAX_REQUEST_FRAME,
    MAX_REQUEST_FRAME_V2, PROTOCOL_VERSION,
};
pub use server::{
    ConfigError, Server, ServerConfig, ServerConfigBuilder, ServerReport, ShutdownHandle,
};

// The batch request/answer model is part of the wire surface; re-export
// so client code does not need a direct lsdb-core dependency for it.
pub use lsdb_core::{BatchAnswer, BatchItem, BatchRequest};
