//! `lsdb-server` — a concurrent TCP query service over the shared-read
//! line-segment index engine.
//!
//! The paper's evaluation is batch-shaped: build an index, run the query
//! workloads, read the counters. This crate adds the build-once/serve-many
//! layer a production deployment needs: the index is built once, stays
//! resident, and a readiness-driven event loop multiplexes every client
//! connection over one I/O thread while a fixed executor pool answers
//! queries — every request running through the `&self` query path with
//! its own [`lsdb_core::QueryCtx`], exactly as the in-process parallel
//! driver does. Remote answers and per-query counters are therefore
//! byte-identical to in-process execution; the wire only adds latency,
//! which the bundled load generators (closed- and open-loop) measure.
//!
//! The wire API is versioned: v1 frames (one request, one positional
//! reply) keep working unchanged, v2 frames add correlation ids — so one
//! connection can pipeline many requests and receive replies out of
//! order — and a `BATCH` op carrying a homogeneous query vector that the
//! server executes Morton-sorted to keep per-context caches warm. v3
//! frames add a `map_id` to the request envelope: one process hosts a
//! [`catalog`] of maps behind a routing layer, with `OPEN_MAP` /
//! `LIST_MAPS` / `CLOSE_MAP` admin ops, lazy open and clock eviction of
//! cold stores, and a process-global [`lsdb_pager::BufferBudget`] shared
//! across every map. v1/v2 clients keep working against the catalog's
//! default map (id 0).
//!
//! The index is live, not frozen: `INSERT`, `DELETE`, and `FLUSH` route
//! through a [`lsdb_core::LiveIndex`] — each mutation is committed to a
//! write-ahead log *before* it is applied or acknowledged, concurrent
//! readers proceed under a shared lock, and `FLUSH` checkpoints the log.
//! Servers bound over a durable store ([`Server::bind_live`]) replay the
//! op log on restart, so acknowledged mutations survive a crash.
//!
//! * [`protocol`] — frame format, v1/v2/v3 request/reply codec (never
//!   panics on malformed bytes),
//! * [`catalog`] — the map catalog: named slots, lazy builders, clock
//!   eviction, cross-map budget enforcement, per-map counters,
//! * [`server`] — event loop + executor pool, graceful drain on
//!   `SHUTDOWN`,
//! * [`client`] — blocking one-connection client with version
//!   negotiation, map routing, batching, and pipelining,
//! * [`loadgen`] — closed- and open-loop throughput/latency drivers.

pub mod catalog;
pub mod client;
mod conn;
mod event_loop;
mod executor;
pub mod loadgen;
pub mod protocol;
pub mod reply_cache;
pub mod server;
mod sys;

pub use catalog::{Catalog, CatalogError, MapBuilder, MapSlot};
pub use client::{CatalogStats, Client, QueryRequest, ServerError};
pub use loadgen::{
    run_closed_loop, run_closed_loop_routed, run_open_loop, run_open_loop_routed, LoadReport,
};
pub use protocol::{
    decode_reply, decode_request, BudgetWire, CacheWire, DecodeFailure, ErrorCode, FrameError,
    FrameEvent, MapInfo, MapStatsWire, ProtoError, Reply, ReplyCacheWire, Request, RequestFrame,
    MAX_BATCH_ITEMS, MAX_REPLY_FRAME, MAX_REQUEST_FRAME, MAX_REQUEST_FRAME_V2, PROTOCOL_VERSION,
};
pub use reply_cache::{ReplyCache, ReplyCachePool};
pub use server::{
    ConfigError, Server, ServerConfig, ServerConfigBuilder, ServerReport, ShutdownHandle,
};

// The batch request/answer model is part of the wire surface; re-export
// so client code does not need a direct lsdb-core dependency for it.
pub use lsdb_core::{BatchAnswer, BatchItem, BatchRequest};
