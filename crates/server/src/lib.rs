//! `lsdb-server` — a concurrent TCP query service over the shared-read
//! line-segment index engine.
//!
//! The paper's evaluation is batch-shaped: build an index, run the query
//! workloads, read the counters. This crate adds the build-once/serve-many
//! layer a production deployment needs: the index is built once, stays
//! resident, and a fixed pool of worker threads answers queries over a
//! small length-prefixed binary protocol — every request running through
//! the `&self` query path with its own [`lsdb_core::QueryCtx`], exactly as
//! the in-process parallel driver does. Remote answers and per-query
//! counters are therefore byte-identical to in-process execution; the wire
//! only adds latency, which the bundled closed-loop load generator
//! measures.
//!
//! * [`protocol`] — frame format, request/reply codec (never panics on
//!   malformed bytes),
//! * [`server`] — acceptor + worker pool, graceful drain on `SHUTDOWN`,
//! * [`client`] — blocking one-connection client,
//! * [`loadgen`] — closed-loop throughput/latency driver.

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, ServerError};
pub use loadgen::{run_closed_loop, LoadReport};
pub use protocol::{
    ErrorCode, FrameError, FrameEvent, ProtoError, Reply, Request, MAX_REPLY_FRAME,
    MAX_REQUEST_FRAME,
};
pub use server::{Server, ServerConfig, ServerReport, ShutdownHandle};
