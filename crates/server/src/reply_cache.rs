//! Epoch-tagged reply cache: byte-identical hot-query serving.
//!
//! The paper's workloads are heavily skewed probes over mostly-static
//! maps, so the same few queries arrive over and over — and every one
//! re-traverses the index from the root. This module caches *encoded
//! reply bytes* per map, keyed by `(mutation epoch, canonical request
//! bytes)`: a hit returns bit-for-bit what a cold execution would (ids
//! **and** the paper's six counters travel inside the stored body), so
//! the cache is invisible to every client and to `STATS` by
//! construction. The stored [`QueryStats`] are folded into the map's
//! [`lsdb_core::SharedStats`] on a hit exactly as a cold execution
//! folds its context snapshot, which keeps v1/v2/v3 `STATS` aggregates
//! byte-identical with the cache on or off.
//!
//! ## Invalidation
//!
//! The key's epoch component is [`lsdb_core::LiveIndex::epoch`], which
//! ticks on every `INSERT`, `DELETE`, and `FLUSH`. A mutation therefore
//! never *touches* the cache — it simply moves probes to a new epoch,
//! lazily orphaning every older entry. Orphans are reclaimed first by
//! the eviction clock (an entry whose epoch is not the map's current
//! epoch is evicted on sight, counted as an invalidation).
//!
//! ## Admission and eviction
//!
//! Entry bytes are charged to the process-wide
//! [`lsdb_pager::BufferBudget`] next to page residency — the reply
//! cache never overshoots the budget (it admits via
//! [`BufferBudget::try_admit`], unlike pools, whose builds may
//! transiently overcommit) — and additionally to a cache-specific byte
//! cap ([`ReplyCachePool`], the `serve --cache-bytes` knob) shared by
//! every map's cache.
//!
//! When the pool is full, a newcomer must *earn* admission: a four-row
//! count-min sketch with periodic halving estimates request
//! frequencies, and the newcomer is admitted only by evicting victims
//! that are colder than it (TinyLFU-style). Eviction runs a segmented
//! second-chance clock: new entries enter a probation ring; a hit
//! promotes an entry to the protected ring (lazily — the move happens
//! when the clock next reaches it); victims are taken from probation
//! first, each spared one lap if its reference bit is set. One polygon
//! scan's worth of cold one-shot queries therefore cannot flush the hot
//! set: the scan's entries die in probation with sketch frequency 1,
//! and can evict nothing hotter than themselves.

use crate::protocol::ReplyCacheWire;
use lsdb_core::QueryStats;
use lsdb_pager::BufferBudget;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed per-entry overhead charged on top of key + body bytes (map
/// entry, ring slot, stats, flags — an estimate, deliberately on the
/// generous side so the cap is honest).
const ENTRY_OVERHEAD: u64 = 112;

/// Process-wide accounting shared by every map's [`ReplyCache`]: the
/// byte cap (`serve --cache-bytes`; 0 disables caching) and the bytes
/// currently held across all maps. Entry bytes are *also* charged to
/// the buffer budget, so `STATS`' budget gauge sees cached replies next
/// to resident pages.
pub struct ReplyCachePool {
    cap: AtomicU64,
    used: AtomicU64,
    budget: Arc<BufferBudget>,
}

impl ReplyCachePool {
    pub fn new(budget: Arc<BufferBudget>) -> Arc<ReplyCachePool> {
        Arc::new(ReplyCachePool {
            cap: AtomicU64::new(0),
            used: AtomicU64::new(0),
            budget,
        })
    }

    /// The pool-wide byte cap (0 = caching disabled).
    pub fn cap(&self) -> u64 {
        self.cap.load(Ordering::Relaxed)
    }

    /// Set the pool-wide byte cap. Shrinking below the current holdings
    /// does not evict eagerly; the next insert's eviction loop brings
    /// the pool back under the line.
    pub fn set_cap(&self, bytes: u64) {
        self.cap.store(bytes, Ordering::Relaxed);
    }

    /// Bytes currently held across every map's cache.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

/// One cached reply: the v1-encoded body (stats + payload, no
/// envelope) plus the counter snapshot to fold on a hit.
struct Entry {
    body: Arc<[u8]>,
    stats: QueryStats,
    bytes: u64,
    /// Second-chance bit: set on every hit, spent by the clock.
    ref_bit: bool,
    /// Logically promoted out of probation by a hit; physically moved
    /// to the protected ring when the clock next reaches it.
    protected: bool,
}

type Key = (u64, Box<[u8]>);

struct Inner {
    entries: HashMap<Key, Entry>,
    probation: VecDeque<Key>,
    protected: VecDeque<Key>,
    /// This map's share of the pool (mirrors the sum of entry bytes).
    bytes: u64,
    sketch: FreqSketch,
}

/// Per-map reply cache. All maps' caches share one [`ReplyCachePool`]
/// (and through it the process buffer budget); each map keeps its own
/// entries, rings, sketch, and counters, so `STATS` can report and
/// `CLOSE_MAP` can drop exactly one slot's entries.
pub struct ReplyCache {
    pool: Arc<ReplyCachePool>,
    /// Per-map enable bit (`Catalog::set_map_cache`); caching needs
    /// this *and* a nonzero pool cap.
    enabled: AtomicBool,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    rejections: AtomicU64,
}

impl ReplyCache {
    pub fn new(pool: Arc<ReplyCachePool>) -> ReplyCache {
        ReplyCache {
            pool,
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                probation: VecDeque::new(),
                protected: VecDeque::new(),
                bytes: 0,
                sketch: FreqSketch::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }

    /// Whether probes and inserts do anything right now.
    pub fn on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) && self.pool.cap() > 0
    }

    /// Flip the per-map enable bit. Disabling drops this map's entries
    /// (their bytes return to the pool and the budget).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.clear();
        }
    }

    /// Look up the reply cached for `req_bytes` at `epoch`. A hit
    /// returns the stored body and counter snapshot and refreshes the
    /// entry's clock state; every probe (hit or miss) also feeds the
    /// frequency sketch that admission consults.
    pub fn probe(&self, epoch: u64, req_bytes: &[u8]) -> Option<(Arc<[u8]>, QueryStats)> {
        if !self.on() {
            return None;
        }
        let mut inner = self.inner.lock().expect("reply cache lock");
        inner.sketch.touch(hash64(req_bytes));
        let key = (epoch, Box::from(req_bytes));
        if let Some(e) = inner.entries.get_mut(&key) {
            e.ref_bit = true;
            e.protected = true;
            let out = (Arc::clone(&e.body), e.stats);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(out)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Offer the reply executed for `req_bytes` at `epoch` for caching.
    /// May decline: oversized entries, a full pool whose victims are
    /// all hotter than the newcomer, or a budget with no headroom.
    pub fn insert(&self, epoch: u64, req_bytes: &[u8], body: Arc<[u8]>, stats: QueryStats) {
        if !self.on() {
            return;
        }
        let cap = self.pool.cap();
        let bytes = req_bytes.len() as u64 + body.len() as u64 + ENTRY_OVERHEAD;
        // One entry may take at most an eighth of the pool: a giant
        // polygon walk must not monopolize the cache.
        if bytes > cap / 8 {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut inner = self.inner.lock().expect("reply cache lock");
        let key: Key = (epoch, Box::from(req_bytes));
        if inner.entries.contains_key(&key) {
            return; // racing duplicate execution; first one won
        }
        let newcomer_freq = inner.sketch.estimate(hash64(req_bytes));
        // Make room under the pool cap by evicting entries colder than
        // the newcomer (orphans from older epochs go first and free).
        while self.pool.used() + bytes > cap {
            match self.evict_one(&mut inner, epoch, Some(newcomer_freq)) {
                Evicted::Yes => {}
                Evicted::VictimHotter | Evicted::Empty => {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        // Charge the process budget; if pages hold every byte, retry
        // once after shedding our own coldest entry, then give up.
        while !self.pool.budget.try_admit(bytes) {
            match self.evict_one(&mut inner, epoch, Some(newcomer_freq)) {
                Evicted::Yes => {}
                Evicted::VictimHotter | Evicted::Empty => {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        self.pool.used.fetch_add(bytes, Ordering::Relaxed);
        inner.bytes += bytes;
        inner.probation.push_back(key.clone());
        inner.entries.insert(
            key,
            Entry {
                body,
                stats,
                bytes,
                ref_bit: false,
                protected: false,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Evict up to `bytes` from this map's cache regardless of
    /// admission (the catalog's budget-pressure shedding path). Returns
    /// the bytes actually freed.
    pub fn evict_bytes(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("reply cache lock");
        let before = inner.bytes;
        while before - inner.bytes < bytes {
            if !matches!(self.evict_one(&mut inner, u64::MAX, None), Evicted::Yes) {
                break;
            }
        }
        before - inner.bytes
    }

    /// Drop every entry (CLOSE_MAP, per-map disable, shedding a whole
    /// slot); the bytes return to the pool and the budget.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("reply cache lock");
        let freed = inner.bytes;
        if freed > 0 {
            self.pool.used.fetch_sub(freed, Ordering::Relaxed);
            self.pool.budget.release(freed);
            self.evictions
                .fetch_add(inner.entries.len() as u64, Ordering::Relaxed);
        }
        inner.entries.clear();
        inner.probation.clear();
        inner.protected.clear();
        inner.bytes = 0;
    }

    /// This map's cached-entry count.
    pub fn entries(&self) -> u64 {
        self.inner.lock().expect("reply cache lock").entries.len() as u64
    }

    /// This map's share of the pool, in bytes.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().expect("reply cache lock").bytes
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The wire block `STATS` reports for this map.
    pub fn wire(&self) -> ReplyCacheWire {
        ReplyCacheWire {
            enabled: self.on(),
            entries: self.entries(),
            bytes: self.bytes(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
        }
    }

    /// One step of the segmented second-chance clock. `current_epoch`
    /// identifies orphans (evicted on sight); `newcomer_freq`, when
    /// present, is the TinyLFU admission duel — a clean victim at least
    /// as hot as the newcomer refuses to die ([`Evicted::VictimHotter`]).
    fn evict_one(
        &self,
        inner: &mut Inner,
        current_epoch: u64,
        newcomer_freq: Option<u8>,
    ) -> Evicted {
        // Bounded laps: every ring entry is touched at most twice (one
        // spare of its ref bit, one decision).
        let mut steps = 2 * (inner.probation.len() + inner.protected.len()) + 2;
        while steps > 0 {
            steps -= 1;
            let from_probation = !inner.probation.is_empty();
            let Some(key) = (if from_probation {
                inner.probation.pop_front()
            } else {
                inner.protected.pop_front()
            }) else {
                return Evicted::Empty;
            };
            let Some(e) = inner.entries.get_mut(&key) else {
                continue; // stale ring slot (entry already cleared)
            };
            // Orphans (older epochs can never be probed again) free on
            // sight, no second chance, no admission duel.
            if key.0 != current_epoch && current_epoch != u64::MAX {
                let bytes = e.bytes;
                inner.entries.remove(&key);
                inner.bytes -= bytes;
                self.pool.used.fetch_sub(bytes, Ordering::Relaxed);
                self.pool.budget.release(bytes);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                return Evicted::Yes;
            }
            if from_probation && e.protected {
                // Lazy promotion: the hit marked it; the clock moves it.
                inner.protected.push_back(key);
                continue;
            }
            if e.ref_bit {
                e.ref_bit = false;
                if from_probation {
                    inner.probation.push_back(key);
                } else {
                    inner.protected.push_back(key);
                }
                continue;
            }
            // Clean victim: the admission duel (if any) decides.
            if let Some(freq) = newcomer_freq {
                let victim_freq = inner.sketch.estimate(hash64(&key.1));
                if victim_freq >= freq {
                    // Put it back where it came from; the newcomer is
                    // not hot enough to displace it.
                    if from_probation {
                        inner.probation.push_front(key);
                    } else {
                        inner.protected.push_front(key);
                    }
                    return Evicted::VictimHotter;
                }
            }
            let bytes = e.bytes;
            inner.entries.remove(&key);
            inner.bytes -= bytes;
            self.pool.used.fetch_sub(bytes, Ordering::Relaxed);
            self.pool.budget.release(bytes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Evicted::Yes;
        }
        Evicted::Empty
    }
}

enum Evicted {
    Yes,
    VictimHotter,
    Empty,
}

/// Four-row count-min sketch over request-byte hashes, 2048 4-bit-ish
/// (u8, saturating) counters per row, halved every `8 * WIDTH` touches
/// so old popularity decays — the classic TinyLFU aging scheme, sized
/// for tens of thousands of distinct requests.
struct FreqSketch {
    rows: Vec<u8>,
    touches: u32,
}

const SKETCH_WIDTH: usize = 2048;
const SKETCH_ROWS: usize = 4;

impl FreqSketch {
    fn new() -> FreqSketch {
        FreqSketch {
            rows: vec![0; SKETCH_WIDTH * SKETCH_ROWS],
            touches: 0,
        }
    }

    fn slot(row: usize, h: u64) -> usize {
        row * SKETCH_WIDTH + ((h >> (16 * row)) as usize & (SKETCH_WIDTH - 1))
    }

    fn touch(&mut self, h: u64) {
        for row in 0..SKETCH_ROWS {
            let s = Self::slot(row, h);
            self.rows[s] = self.rows[s].saturating_add(1);
        }
        self.touches += 1;
        if self.touches >= (8 * SKETCH_WIDTH) as u32 {
            self.touches = 0;
            for c in &mut self.rows {
                *c >>= 1;
            }
        }
    }

    fn estimate(&self, h: u64) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.rows[Self::slot(row, h)])
            .min()
            .unwrap_or(0)
    }
}

fn hash64(bytes: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    bytes.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: u64) -> Arc<ReplyCachePool> {
        let p = ReplyCachePool::new(BufferBudget::unlimited());
        p.set_cap(cap);
        p
    }

    fn body(n: usize) -> Arc<[u8]> {
        vec![0xAB; n].into()
    }

    #[test]
    fn probe_insert_roundtrip_and_counters() {
        let cache = ReplyCache::new(pool(1 << 20));
        assert!(cache.probe(0, b"q1").is_none());
        cache.insert(0, b"q1", body(40), QueryStats::default());
        let (b, _) = cache.probe(0, b"q1").expect("hit");
        assert_eq!(b.len(), 40);
        let w = cache.wire();
        assert_eq!((w.hits, w.misses, w.insertions), (1, 1, 1));
        assert_eq!(w.entries, 1);
        assert!(w.bytes > 40);
    }

    #[test]
    fn epoch_change_orphans_entries() {
        let cache = ReplyCache::new(pool(1 << 20));
        cache.insert(3, b"q", body(16), QueryStats::default());
        assert!(cache.probe(3, b"q").is_some());
        assert!(cache.probe(4, b"q").is_none(), "new epoch never hits");
    }

    #[test]
    fn cap_zero_disables_everything() {
        let cache = ReplyCache::new(pool(0));
        assert!(!cache.on());
        cache.insert(0, b"q", body(16), QueryStats::default());
        assert!(cache.probe(0, b"q").is_none());
        let w = cache.wire();
        assert_eq!((w.hits, w.misses, w.insertions), (0, 0, 0));
    }

    #[test]
    fn per_map_disable_clears_and_stops() {
        let cache = ReplyCache::new(pool(1 << 20));
        cache.insert(0, b"q", body(16), QueryStats::default());
        cache.set_enabled(false);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.probe(0, b"q").is_none());
        assert_eq!(cache.wire().misses, 0, "disabled probes count nothing");
        cache.set_enabled(true);
        assert!(cache.probe(0, b"q").is_none());
        assert_eq!(cache.wire().misses, 1);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let cache = ReplyCache::new(pool(1024));
        cache.insert(0, b"big", body(900), QueryStats::default());
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.wire().rejections, 1);
    }

    #[test]
    fn cold_scan_cannot_flush_hot_entries() {
        // Fill a pool exactly with entries made hot by repeated probes,
        // then stream one-shot newcomers: the hot set must survive.
        // (Pool sized at exactly 8 entries — the oversize rule caps one
        // entry at an eighth of the pool, so this is the smallest full
        // pool the cache accepts.)
        let cap = 8 * (ENTRY_OVERHEAD + 2 + 64);
        let cache = ReplyCache::new(pool(cap));
        let hot: Vec<Vec<u8>> = (0..8).map(|i| format!("h{i}").into_bytes()).collect();
        for q in &hot {
            cache.probe(0, q);
            cache.insert(0, q, body(64), QueryStats::default());
        }
        for q in &hot {
            for _ in 0..8 {
                assert!(cache.probe(0, q).is_some());
            }
        }
        for i in 0..64u32 {
            let q = format!("scan{i}").into_bytes();
            cache.probe(0, &q);
            cache.insert(0, &q, body(60), QueryStats::default());
        }
        let survivors = hot.iter().filter(|q| cache.probe(0, q).is_some()).count();
        assert!(
            survivors >= 7,
            "hot set flushed by a cold scan: {survivors}/8 survived"
        );
    }

    #[test]
    fn orphans_evict_before_live_entries() {
        let cap = 8 * (ENTRY_OVERHEAD + 2 + 64);
        let cache = ReplyCache::new(pool(cap));
        for i in 0..8u32 {
            let q = format!("o{i}").into_bytes();
            cache.insert(0, &q, body(64), QueryStats::default());
        }
        // Epoch moved on; the next inserts reclaim the orphans even
        // though the orphans were never "colder" in the sketch.
        for i in 0..8u32 {
            let q = format!("n{i}").into_bytes();
            cache.probe(1, &q);
            cache.insert(1, &q, body(64), QueryStats::default());
        }
        let w = cache.wire();
        assert_eq!(w.invalidations, 8, "orphans reclaimed: {w:?}");
        for i in 0..8u32 {
            let q = format!("n{i}").into_bytes();
            assert!(cache.probe(1, &q).is_some());
        }
    }

    #[test]
    fn budget_denial_rejects_after_trying_to_shed() {
        let budget = BufferBudget::new(256);
        budget.charge(256); // pages hold every byte
        let p = ReplyCachePool::new(Arc::clone(&budget));
        p.set_cap(1 << 20);
        let cache = ReplyCache::new(p);
        cache.insert(0, b"q", body(16), QueryStats::default());
        assert_eq!(cache.entries(), 0, "no headroom, nothing to shed");
        assert_eq!(cache.wire().rejections, 1);
        budget.release(200);
        cache.insert(0, b"q", body(16), QueryStats::default());
        assert_eq!(cache.entries(), 1, "headroom appeared");
        assert_eq!(budget.used(), 56 + cache.bytes());
    }

    #[test]
    fn clear_releases_pool_and_budget() {
        let budget = BufferBudget::new(1 << 20);
        let p = ReplyCachePool::new(Arc::clone(&budget));
        p.set_cap(1 << 20);
        let cache = ReplyCache::new(Arc::clone(&p));
        for i in 0..5u32 {
            cache.insert(
                0,
                format!("q{i}").as_bytes(),
                body(64),
                QueryStats::default(),
            );
        }
        assert!(p.used() > 0);
        assert_eq!(budget.used(), p.used());
        cache.clear();
        assert_eq!(p.used(), 0);
        assert_eq!(budget.used(), 0);
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn evict_bytes_frees_at_least_the_ask() {
        let cache = ReplyCache::new(pool(1 << 20));
        for i in 0..8u32 {
            cache.insert(
                0,
                format!("q{i}").as_bytes(),
                body(64),
                QueryStats::default(),
            );
        }
        let before = cache.bytes();
        let freed = cache.evict_bytes(200);
        assert!(freed >= 200, "freed {freed}");
        assert_eq!(cache.bytes(), before - freed);
        assert!(cache.evict_bytes(u64::MAX) > 0, "drains the rest");
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn sketch_estimates_and_ages() {
        let mut s = FreqSketch::new();
        for _ in 0..10 {
            s.touch(hash64(b"hot"));
        }
        s.touch(hash64(b"cold"));
        assert!(s.estimate(hash64(b"hot")) > s.estimate(hash64(b"cold")));
        assert_eq!(s.estimate(hash64(b"never")), 0);
        for _ in 0..(8 * SKETCH_WIDTH) {
            s.touch(hash64(b"noise"));
        }
        assert!(
            s.estimate(hash64(b"hot")) <= 5,
            "aging halves old popularity"
        );
    }
}
