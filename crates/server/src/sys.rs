//! Minimal readiness-notification shim over raw syscalls.
//!
//! The event loop needs exactly three primitives — `poll(2)`, `pipe(2)`
//! and `fcntl(2)` — and the workspace carries no external dependencies,
//! so they are declared here directly against the C library `std`
//! already links. Everything else (reads, writes, close-on-drop) goes
//! through [`std::fs::File`] over the raw descriptors.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};

/// Readiness bits for [`PollFd::events`] / [`PollFd::revents`]
/// (values from `<poll.h>` on Linux).
pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

/// One entry of a `poll(2)` set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Any readable-class readiness, including error/hangup (which must
    /// be serviced by a read so the loop observes the failure).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
}

/// Block until a descriptor in `fds` is ready or `timeout_ms` elapses.
/// Returns the number of ready descriptors (0 on timeout). `EINTR` is
/// reported as `Ok(0)` — the caller's loop re-polls anyway.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively borrowed slice of
    // `#[repr(C)]` pollfd-compatible structs for the whole call.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let e = io::Error::last_os_error();
    if e.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(e)
    }
}

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on a descriptor we own; no pointers involved.
    unsafe {
        let flags = fcntl(fd, F_GETFL);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Self-pipe waker: worker threads [`WakePipe::wake`] after posting a
/// completion, which makes the event loop's `poll` return immediately.
/// Both ends are nonblocking — a full pipe means a wake is already
/// pending, which is all the signal carries.
pub struct WakePipe {
    read: File,
    write: File,
}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds: [c_int; 2] = [-1, -1];
        // SAFETY: `fds` is a valid 2-element int array for pipe(2) to
        // fill; on success both descriptors are fresh and owned here.
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: ownership of each fresh descriptor moves into exactly
        // one File, which closes it on drop.
        let (read, write) = unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) };
        set_nonblocking(read.as_raw_fd())?;
        set_nonblocking(write.as_raw_fd())?;
        Ok(WakePipe { read, write })
    }

    /// The descriptor the event loop polls for readability.
    pub fn poll_fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Nudge the poller. Failure (full pipe, dead reader) is ignored:
    /// either a wake is already pending or nobody is listening.
    pub fn wake(&self) {
        let _ = (&self.write).write(&[1]);
    }

    /// Consume pending wake bytes so the next poll blocks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.read).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_makes_pipe_readable_and_drain_clears_it() {
        let wp = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(wp.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "fresh pipe is quiet");

        wp.wake();
        wp.wake(); // coalesces, never blocks
        let mut fds = [PollFd::new(wp.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());

        wp.drain();
        let mut fds = [PollFd::new(wp.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "drained pipe is quiet");
    }

    #[test]
    fn poll_times_out_on_quiet_fd() {
        let wp = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(wp.poll_fd(), POLLIN)];
        let t0 = std::time::Instant::now();
        assert_eq!(poll_fds(&mut fds, 20).unwrap(), 0);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
    }
}
