//! The map catalog: one process hosting many maps behind one routing
//! layer and one buffer budget.
//!
//! A [`Catalog`] is a fixed roster of named maps. Each map is either
//! *live* (added pre-built via [`Catalog::add_live`]; never closed,
//! because there is no recipe to get it back) or *buildable* (added via
//! [`Catalog::add_map`] with a deterministic builder closure; opened
//! lazily on first use and closable at any time — its next query simply
//! rebuilds it). The v3 wire envelope's `map` field indexes this roster;
//! v1/v2 frames land on map `0`, so a catalog built with
//! [`Catalog::single`] behaves exactly like the old one-map server.
//!
//! ## Budget and eviction
//!
//! Every open map's buffer pools are attached to one shared
//! [`BufferBudget`], so the process meters *total* page bytes across
//! maps rather than per-map pool caps. After each query the executing
//! worker calls [`Catalog::enforce`]:
//!
//! * **Budget pressure** — while the budget is overshot, a second-chance
//!   clock sweeps the open maps: a map whose reference bit is set (it
//!   was queried since the last sweep) is spared once and its bit
//!   cleared; otherwise the map *sheds* physical page bytes
//!   (`SpatialIndex::shed_cache`). Shedding drops bytes but never
//!   logical residency, so the paper's per-query counters stay
//!   byte-identical to an unpressured single-map run — the contract the
//!   cross-map isolation suite pins.
//! * **Open-map cap** — while more than `max_open` buildable maps are
//!   open, the same clock *closes* cold ones outright (dropping their
//!   pools returns their bytes to the budget); the map reopens lazily
//!   and deterministically on its next query.
//!
//! Maps that have absorbed live mutations are never auto-closed (their
//! builder would rebuild the pristine map), and builderless maps cannot
//! be closed at all; both still shed cache, which is always safe.
//!
//! Per-map [`SharedStats`] survive close/reopen cycles, so `STATS`
//! reports whole-lifetime counters per map alongside the process
//! aggregate.

use crate::protocol::{BudgetWire, CacheWire, ErrorCode, MapInfo, MapStatsWire, Reply};
use crate::reply_cache::{ReplyCache, ReplyCachePool};
use lsdb_core::{LiveIndex, SharedStats, SpatialIndex};
use lsdb_pager::{BufferBudget, CacheStats};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A deterministic recipe for (re)building one map's index. Called
/// under the map's slot lock, possibly many times over the server's
/// life; must yield an identically-behaving index each time.
pub type MapBuilder = Box<dyn Fn() -> io::Result<Box<dyn SpatialIndex>> + Send + Sync>;

/// One catalog entry.
pub struct MapSlot {
    name: String,
    /// `None` for live-added maps — they cannot be rebuilt, so they are
    /// never closed.
    builder: Option<MapBuilder>,
    state: RwLock<Option<LiveIndex>>,
    /// Whole-lifetime per-map counters (survive close/reopen).
    stats: SharedStats,
    /// Second-chance bit: set on every query, cleared by the eviction
    /// clock; a map is only shed/closed after a full unreferenced lap.
    ref_bit: AtomicBool,
    /// The map absorbed a live mutation: auto-close would lose it.
    mutated: AtomicBool,
    /// Epoch-tagged reply cache for this map's queries (shares the
    /// catalog-wide [`ReplyCachePool`] and through it the budget).
    reply_cache: ReplyCache,
}

impl MapSlot {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-map lifetime counters (what `STATS` reports for this map).
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// This map's reply cache (the executor probes and fills it).
    pub fn reply_cache(&self) -> &ReplyCache {
        &self.reply_cache
    }

    fn is_open(&self) -> bool {
        self.state.read().expect("slot lock").is_some()
    }

    /// Eviction may not close this slot (it could not come back intact).
    fn unclosable(&self) -> bool {
        self.builder.is_none() || self.mutated.load(Ordering::Relaxed)
    }

    /// Record a live mutation: from here on the slot is pinned open.
    pub(crate) fn mark_mutated(&self) {
        self.mutated.store(true, Ordering::Relaxed);
    }
}

/// Why a catalog operation failed, shaped for the wire.
#[derive(Debug)]
pub enum CatalogError {
    /// No slot with that id / name.
    UnknownMap(String),
    /// The operation is valid but refused (e.g. closing a builderless
    /// or mutated map).
    Refused(String),
    /// Opening the map failed (builder I/O error).
    Io(io::Error),
}

impl CatalogError {
    /// The structured error frame a server answers with.
    pub fn to_reply(&self) -> Reply {
        let (code, message) = match self {
            CatalogError::UnknownMap(what) => {
                (ErrorCode::UnknownMap, format!("unknown map {what}"))
            }
            CatalogError::Refused(why) => (ErrorCode::BadArgument, why.clone()),
            CatalogError::Io(e) => (ErrorCode::Internal, format!("map open failed: {e}")),
        };
        Reply::Error { code, message }
    }
}

/// The roster of maps one server process hosts. Built before binding,
/// immutable in shape afterwards (slots open and close, but the roster
/// itself is fixed — ids are stable for the server's life).
pub struct Catalog {
    slots: Vec<MapSlot>,
    by_name: HashMap<String, u32>,
    budget: Arc<BufferBudget>,
    /// Most *buildable* maps allowed open at once (live maps do not
    /// count — they cannot be closed anyway).
    max_open: usize,
    open_buildable: AtomicUsize,
    /// Clock hand for the second-chance sweeps.
    hand: AtomicUsize,
    /// Process-wide aggregates (every map's queries folded together) —
    /// exactly what the single-map server's `STATS` reported.
    aggregate: SharedStats,
    /// Byte accounting shared by every slot's reply cache; its cap is
    /// the `serve --cache-bytes` knob (0 = caching off, the default).
    reply_cache_pool: Arc<ReplyCachePool>,
}

impl Catalog {
    /// An empty catalog metering `budget_bytes` of page-pool memory
    /// across all maps (`0` means unlimited) and keeping at most
    /// `max_open` buildable maps open at once.
    pub fn new(budget_bytes: u64, max_open: usize) -> Catalog {
        let budget = if budget_bytes == 0 {
            BufferBudget::unlimited()
        } else {
            BufferBudget::new(budget_bytes)
        };
        let reply_cache_pool = ReplyCachePool::new(Arc::clone(&budget));
        Catalog {
            slots: Vec::new(),
            by_name: HashMap::new(),
            budget,
            max_open: max_open.max(1),
            open_buildable: AtomicUsize::new(0),
            hand: AtomicUsize::new(0),
            aggregate: SharedStats::new(),
            reply_cache_pool,
        }
    }

    /// The one-map catalog the classic `bind`/`bind_live` servers use:
    /// a single live slot named `default`, unlimited budget.
    pub fn single(live: LiveIndex) -> Catalog {
        let mut catalog = Catalog::new(0, 1);
        catalog.add_live("default", live);
        catalog
    }

    /// Add a pre-built live map. It is open from the start and can
    /// never be closed (there is no builder to reopen it); its pools
    /// are attached to the catalog budget. Returns the map id.
    ///
    /// # Panics
    ///
    /// If `name` is already taken.
    pub fn add_live(&mut self, name: &str, live: LiveIndex) -> u32 {
        let budget = Arc::clone(&self.budget);
        live.with_write(|index| index.attach_budget(&budget));
        self.push(name, None, Some(live))
    }

    /// Add a buildable map, opened lazily on first use. Returns the map
    /// id.
    ///
    /// # Panics
    ///
    /// If `name` is already taken.
    pub fn add_map(&mut self, name: &str, builder: MapBuilder) -> u32 {
        self.push(name, Some(builder), None)
    }

    fn push(&mut self, name: &str, builder: Option<MapBuilder>, live: Option<LiveIndex>) -> u32 {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate map name {name:?}"
        );
        let id = self.slots.len() as u32;
        self.slots.push(MapSlot {
            name: name.to_string(),
            builder,
            state: RwLock::new(live),
            stats: SharedStats::new(),
            ref_bit: AtomicBool::new(false),
            mutated: AtomicBool::new(false),
            reply_cache: ReplyCache::new(Arc::clone(&self.reply_cache_pool)),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shared budget every open map's pools are attached to.
    pub fn budget(&self) -> &Arc<BufferBudget> {
        &self.budget
    }

    /// Size the reply-cache pool shared by every map (`serve
    /// --cache-bytes`). `0` — the default — disables reply caching
    /// entirely; probes and inserts become no-ops.
    pub fn set_reply_cache_bytes(&self, bytes: u64) {
        self.reply_cache_pool.set_cap(bytes);
    }

    /// The pool backing every slot's reply cache.
    pub fn reply_cache_pool(&self) -> &Arc<ReplyCachePool> {
        &self.reply_cache_pool
    }

    /// Flip one map's reply-cache enable bit (disabling drops its
    /// entries). The pool cap still gates actual caching.
    pub fn set_map_cache(&self, name: &str, enabled: bool) -> Result<(), CatalogError> {
        let &id = self
            .by_name
            .get(name)
            .ok_or_else(|| CatalogError::UnknownMap(format!("{name:?}")))?;
        self.slots[id as usize].reply_cache.set_enabled(enabled);
        Ok(())
    }

    /// The process-wide aggregate counters (what v1/v2 `STATS` reports).
    pub fn aggregate(&self) -> &SharedStats {
        &self.aggregate
    }

    /// Run `f` against map `map`'s live index, opening it first if cold.
    /// Marks the slot referenced and enforces the budget and open-map
    /// cap *after* `f`'s read guard is gone (so enforcement never
    /// deadlocks with the query and never perturbs its counters).
    pub fn with_live<R>(
        &self,
        map: u32,
        f: impl FnOnce(&MapSlot, &LiveIndex) -> R,
    ) -> Result<R, CatalogError> {
        let slot = self
            .slots
            .get(map as usize)
            .ok_or_else(|| CatalogError::UnknownMap(format!("id {map}")))?;
        slot.ref_bit.store(true, Ordering::Relaxed);
        let out = loop {
            {
                let state = slot.state.read().expect("slot lock");
                if let Some(live) = state.as_ref() {
                    break f(slot, live);
                }
            }
            // Cold: open under the write lock, then re-check — another
            // thread's enforcement may close it between the two locks.
            self.open_slot(slot).map_err(CatalogError::Io)?;
        };
        self.enforce();
        Ok(out)
    }

    /// Resolve `name` to its id, opening the map if cold. Returns
    /// `(id, segment count)`.
    pub fn open_by_name(&self, name: &str) -> Result<(u32, u64), CatalogError> {
        let &id = self
            .by_name
            .get(name)
            .ok_or_else(|| CatalogError::UnknownMap(format!("{name:?}")))?;
        let len = self.with_live(id, |_, live| live.with_read(|index| index.len() as u64))?;
        Ok((id, len))
    }

    /// Close `name`'s store (its pools return their bytes to the
    /// budget; the map reopens lazily on its next query). Returns
    /// whether it was open. Builderless and mutated maps are refused —
    /// closing them would lose state.
    pub fn close_by_name(&self, name: &str) -> Result<bool, CatalogError> {
        let &id = self
            .by_name
            .get(name)
            .ok_or_else(|| CatalogError::UnknownMap(format!("{name:?}")))?;
        let slot = &self.slots[id as usize];
        if slot.builder.is_none() {
            return Err(CatalogError::Refused(format!(
                "map {name:?} has no builder and cannot be closed"
            )));
        }
        if slot.mutated.load(Ordering::Relaxed) {
            return Err(CatalogError::Refused(format!(
                "map {name:?} holds live mutations and cannot be closed"
            )));
        }
        Ok(self.close_slot(slot))
    }

    /// The roster, in id order.
    pub fn list(&self) -> Vec<MapInfo> {
        self.slots
            .iter()
            .enumerate()
            .map(|(id, slot)| MapInfo {
                id: id as u32,
                open: slot.is_open(),
                name: slot.name.clone(),
            })
            .collect()
    }

    /// The full multi-map statistics reply: aggregate, budget, and one
    /// block per map (cache counters all-zero for cold maps).
    pub fn stats_v3(&self) -> Reply {
        let maps = self
            .slots
            .iter()
            .enumerate()
            .map(|(id, slot)| {
                let state = slot.state.read().expect("slot lock");
                let cache = state
                    .as_ref()
                    .map(|live| live.with_read(|index| index.cache_stats()))
                    .unwrap_or_default();
                MapStatsWire {
                    id: id as u32,
                    open: state.is_some(),
                    name: slot.name.clone(),
                    queries: slot.stats.queries(),
                    totals: slot.stats.snapshot(),
                    cache: cache_wire(cache),
                    reply_cache: slot.reply_cache.wire(),
                }
            })
            .collect();
        Reply::StatsV3 {
            queries: self.aggregate.queries(),
            totals: self.aggregate.snapshot(),
            budget: BudgetWire {
                total: self.budget.total(),
                used: self.budget.used(),
                admissions: self.budget.admissions(),
                denials: self.budget.denials(),
            },
            maps,
        }
    }

    fn open_slot(&self, slot: &MapSlot) -> io::Result<()> {
        let mut state = slot.state.write().expect("slot lock");
        if state.is_none() {
            let builder = slot
                .builder
                .as_ref()
                .expect("cold slots always have a builder");
            let mut index = builder()?;
            index.attach_budget(&self.budget);
            *state = Some(LiveIndex::volatile(index));
            self.open_buildable.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn close_slot(&self, slot: &MapSlot) -> bool {
        debug_assert!(slot.builder.is_some());
        let mut state = slot.state.write().expect("slot lock");
        if state.take().is_some() {
            // Dropping the LiveIndex drops its pools, whose shards
            // release their held bytes back to the budget. The reply
            // cache must go with it: a reopened map starts its epoch
            // counter over at zero, which would otherwise resurrect
            // entries cached under the previous incarnation's epoch 0.
            slot.reply_cache.clear();
            self.open_buildable.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Post-query enforcement (see the module docs): close buildable
    /// maps beyond `max_open`, then shed physical page bytes while the
    /// budget is overshot — both via a second-chance clock over the
    /// roster. Runs with no slot lock held by the caller.
    pub fn enforce(&self) {
        // Fast path: nothing to do, two relaxed loads.
        let over_cap = self.open_buildable.load(Ordering::Relaxed) > self.max_open;
        if !over_cap && self.budget.over_budget() == 0 {
            return;
        }
        let n = self.slots.len();
        // Close cold buildable maps beyond the cap. Two laps: the first
        // spends reference bits, the second closes whatever remains.
        let mut steps = 2 * n;
        while self.open_buildable.load(Ordering::Relaxed) > self.max_open && steps > 0 {
            steps -= 1;
            let slot = &self.slots[self.hand.fetch_add(1, Ordering::Relaxed) % n];
            if slot.unclosable() || !slot.is_open() {
                continue;
            }
            if slot.ref_bit.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            self.close_slot(slot);
        }
        // Shed while over budget. Cached replies go first (they are the
        // cheapest bytes to recompute — one index traversal — whereas a
        // shed page costs a disk read on every future touch), then
        // physical page bytes. Both are safe on every open map (bytes
        // only; logical residency and counters untouched).
        let mut steps = 2 * n;
        while self.budget.over_budget() > 0 && steps > 0 {
            steps -= 1;
            let slot = &self.slots[self.hand.fetch_add(1, Ordering::Relaxed) % n];
            if slot.ref_bit.swap(false, Ordering::Relaxed) {
                continue;
            }
            let overage = self.budget.over_budget();
            if slot.reply_cache.evict_bytes(overage) >= overage {
                break;
            }
            let overage = self.budget.over_budget();
            let state = slot.state.read().expect("slot lock");
            if let Some(live) = state.as_ref() {
                // Shed write-backs are plain I/O errors at worst; a map
                // that cannot shed is simply skipped this lap.
                let _ = live.with_read(|index| index.shed_cache(overage));
            }
        }
    }

    /// One line of serving telemetry for `serve --verbose`: budget
    /// residency, page evictions, and reply-cache activity across the
    /// roster.
    pub fn activity_line(&self) -> String {
        let open = self.slots.iter().filter(|s| s.is_open()).count();
        let mut page_evictions = 0u64;
        for slot in &self.slots {
            let state = slot.state.read().expect("slot lock");
            if let Some(live) = state.as_ref() {
                page_evictions += live.with_read(|index| index.cache_stats()).evictions;
            }
        }
        let (mut hits, mut misses, mut cache_evictions) = (0u64, 0u64, 0u64);
        for slot in &self.slots {
            hits += slot.reply_cache.hits();
            misses += slot.reply_cache.misses();
            cache_evictions += slot.reply_cache.evictions();
        }
        let total = self.budget.total();
        let total = if total == u64::MAX {
            "inf".to_string()
        } else {
            total.to_string()
        };
        format!(
            "maps {open}/{} open · budget {}/{total} B · page evictions {page_evictions} · \
             reply cache {} B, {hits} hits / {misses} misses, {cache_evictions} evictions",
            self.slots.len(),
            self.budget.used(),
            self.reply_cache_pool.used(),
        )
    }
}

fn cache_wire(c: CacheStats) -> CacheWire {
    CacheWire {
        resident_pages: c.resident_pages,
        cached_pages: c.cached_pages,
        capacity_pages: c.capacity_pages,
        hits: c.hits,
        misses: c.misses,
        evictions: c.evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::{IndexConfig, PolygonalMap, QueryCtx, SpatialIndex};
    use lsdb_geom::{Point, Rect, Segment};
    use lsdb_rtree::RTree;

    fn tiny_map(n: usize, shift: i32) -> PolygonalMap {
        let segs: Vec<Segment> = (0..n)
            .map(|i| {
                let x = ((i * 353) % 4000) as i32 + shift;
                let y = ((i * 991) % 4000) as i32;
                Segment::new(Point::new(x, y), Point::new(x + 19, y + 11))
            })
            .collect();
        PolygonalMap::new("tiny", segs)
    }

    fn builder_for(n: usize, shift: i32) -> MapBuilder {
        Box::new(move || {
            let map = tiny_map(n, shift);
            Ok(Box::new(RTree::bulk_load(
                &map,
                IndexConfig {
                    page_size: 512,
                    pool_pages: 32,
                    ..Default::default()
                },
            )) as Box<dyn SpatialIndex>)
        })
    }

    #[test]
    fn lazy_open_close_reopen_yields_identical_answers() {
        let mut catalog = Catalog::new(0, 8);
        let id = catalog.add_map("a", builder_for(300, 0));
        assert!(!catalog.list()[id as usize].open);

        let w = Rect::new(0, 0, 2000, 2000);
        let first = catalog
            .with_live(id, |_, live| {
                live.with_read(|index| {
                    let mut ctx = QueryCtx::new();
                    index.window(w, &mut ctx)
                })
            })
            .unwrap();
        assert!(catalog.list()[id as usize].open);

        assert!(catalog.close_by_name("a").unwrap());
        assert!(!catalog.list()[id as usize].open);
        assert!(!catalog.close_by_name("a").unwrap(), "already cold");

        let again = catalog
            .with_live(id, |_, live| {
                live.with_read(|index| {
                    let mut ctx = QueryCtx::new();
                    index.window(w, &mut ctx)
                })
            })
            .unwrap();
        assert_eq!(first, again, "reopen rebuilds deterministically");
    }

    #[test]
    fn unknown_ids_and_names_are_structured_errors() {
        let mut catalog = Catalog::new(0, 4);
        catalog.add_map("a", builder_for(10, 0));
        assert!(matches!(
            catalog.with_live(7, |_, _| ()),
            Err(CatalogError::UnknownMap(_))
        ));
        assert!(matches!(
            catalog.open_by_name("nope"),
            Err(CatalogError::UnknownMap(_))
        ));
        assert!(matches!(
            catalog.close_by_name("nope"),
            Err(CatalogError::UnknownMap(_))
        ));
    }

    #[test]
    fn builderless_and_mutated_maps_refuse_to_close() {
        let mut catalog = Catalog::new(0, 4);
        let live = {
            let map = tiny_map(50, 0);
            LiveIndex::volatile(Box::new(RTree::bulk_load(&map, IndexConfig::default())))
        };
        catalog.add_live("pinned", live);
        let id = catalog.add_map("b", builder_for(50, 0));
        assert!(matches!(
            catalog.close_by_name("pinned"),
            Err(CatalogError::Refused(_))
        ));
        catalog
            .with_live(id, |slot, _| slot.mark_mutated())
            .unwrap();
        assert!(matches!(
            catalog.close_by_name("b"),
            Err(CatalogError::Refused(_))
        ));
    }

    #[test]
    fn open_map_cap_closes_cold_maps() {
        let mut catalog = Catalog::new(0, 2);
        let ids: Vec<u32> = (0..5)
            .map(|i| catalog.add_map(&format!("m{i}"), builder_for(120, i * 7)))
            .collect();
        for &id in &ids {
            catalog
                .with_live(id, |_, live| live.with_read(|index| index.len()))
                .unwrap();
        }
        let open = catalog.list().iter().filter(|m| m.open).count();
        assert!(
            open <= 3,
            "cap 2 plus at most the one just referenced, got {open}"
        );
    }

    #[test]
    fn budget_pressure_sheds_across_maps() {
        // Two maps whose combined pools overshoot a small budget: after
        // interleaved queries the budget must be respected (physical
        // bytes shed), while answers keep flowing.
        let mut catalog = Catalog::new(48 * 512, 8);
        let a = catalog.add_map("a", builder_for(600, 0));
        let b = catalog.add_map("b", builder_for(600, 311));
        let w = Rect::new(0, 0, 5000, 5000);
        for _ in 0..4 {
            for &id in &[a, b] {
                let got = catalog
                    .with_live(id, |_, live| {
                        live.with_read(|index| {
                            let mut ctx = QueryCtx::new();
                            index.window(w, &mut ctx).len()
                        })
                    })
                    .unwrap();
                assert_eq!(got, 600);
            }
        }
        // Enforcement ran after the last query with both ref bits in
        // play; run a couple of spare laps to let the clock settle.
        catalog.enforce();
        catalog.enforce();
        assert_eq!(
            catalog.budget().over_budget(),
            0,
            "used {} of {}",
            catalog.budget().used(),
            catalog.budget().total()
        );
        if let Reply::StatsV3 { maps, budget, .. } = catalog.stats_v3() {
            assert!(budget.used <= budget.total);
            let evictions: u64 = maps.iter().map(|m| m.cache.evictions).sum();
            assert!(evictions > 0, "pressure must have shed pages");
        } else {
            panic!("stats_v3 must answer StatsV3");
        }
    }
}
