//! Per-connection state for the event loop: an incremental frame parser
//! plus buffered, ordered reply delivery.
//!
//! A [`Conn`] owns both directions of one client socket. Inbound bytes
//! accumulate in a [`FrameBuf`] until whole frames can be peeled off;
//! outbound frames accumulate in a write buffer flushed whenever `poll`
//! reports the socket writable. Replies to *v1* frames must leave in
//! arrival order (a v1 client reads them positionally), so each v1 frame
//! is assigned a per-connection sequence number on arrival and its reply
//! parks in a reorder buffer until every earlier v1 reply has been
//! queued. Replies to *v2* frames carry a correlation id and are queued
//! the moment they complete — out-of-order completion is the point of
//! pipelining.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Incremental length-prefixed frame parser. Bytes go in via
/// [`FrameBuf::extend`]; complete payloads come out of
/// [`FrameBuf::next_frame`]. Consumed bytes are compacted lazily so
/// steady-state parsing does no per-frame reallocation.
#[derive(Default)]
pub(crate) struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is dead.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed byte count (parsing backlog).
    #[cfg(test)]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Peel off the next complete frame payload, if one is fully
    /// buffered. `Err(len)` means the peer declared an impossible length
    /// (zero, or beyond `max_len`) — the stream can never be
    /// resynchronized past it.
    pub fn next_frame(&mut self, max_len: u32) -> Result<Option<Vec<u8>>, u32> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len == 0 || len > max_len {
            return Err(len);
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[4..total].to_vec();
        self.start += total;
        Ok(Some(payload))
    }
}

/// One client connection owned by the event loop.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub rbuf: FrameBuf,
    /// Framed bytes awaiting the socket; `wstart` marks the flushed
    /// prefix (compacted lazily, like `FrameBuf`).
    wbuf: Vec<u8>,
    wstart: usize,
    /// Requests handed to the executor and not yet completed.
    pub inflight: usize,
    /// Next sequence number to assign to an arriving v1 frame.
    next_v1_seq: u64,
    /// Sequence number whose reply must be queued next.
    next_v1_flush: u64,
    /// Completed v1 replies waiting for their turn in arrival order.
    v1_parked: BTreeMap<u64, Vec<u8>>,
    /// Peer sent EOF (or an unrecoverable frame): stop reading.
    pub read_closed: bool,
    /// Close the socket once the write buffer drains.
    pub close_after_flush: bool,
    /// Last moment the socket accepted bytes while we had bytes to send
    /// (stall detection against `write_timeout`).
    pub last_write_progress: Instant,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: FrameBuf::new(),
            wbuf: Vec::new(),
            wstart: 0,
            inflight: 0,
            next_v1_seq: 0,
            next_v1_flush: 0,
            v1_parked: BTreeMap::new(),
            read_closed: false,
            close_after_flush: false,
            last_write_progress: Instant::now(),
        }
    }

    /// Assign the next v1 arrival sequence number (v1 frames only — v2
    /// frames are ordered by correlation id, client-side).
    pub fn assign_v1_seq(&mut self) -> u64 {
        let seq = self.next_v1_seq;
        self.next_v1_seq += 1;
        seq
    }

    /// Queue the reply for v1 sequence `seq`, releasing it (and any
    /// parked successors) to the write buffer only in arrival order.
    pub fn queue_v1(&mut self, seq: u64, payload: Vec<u8>) {
        self.v1_parked.insert(seq, payload);
        while let Some(payload) = self.v1_parked.remove(&self.next_v1_flush) {
            self.queue_frame(&payload);
            self.next_v1_flush += 1;
        }
    }

    /// Queue a v2-enveloped reply immediately (completion order).
    pub fn queue_v2(&mut self, payload: Vec<u8>) {
        self.queue_frame(&payload);
    }

    fn queue_frame(&mut self, payload: &[u8]) {
        if self.wbuf.is_empty() {
            self.last_write_progress = Instant::now();
        }
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    pub fn wants_write(&self) -> bool {
        self.wstart < self.wbuf.len()
    }

    /// Nothing buffered in either direction and nothing executing.
    pub fn is_idle(&self) -> bool {
        self.inflight == 0 && !self.wants_write() && self.v1_parked.is_empty()
    }

    /// All owed replies are queued and flushed (parked v1 replies count
    /// as owed; in-flight requests do too).
    pub fn fully_flushed(&self) -> bool {
        self.is_idle()
    }

    /// Pull whatever the socket has into the parse buffer. Returns
    /// `Ok(true)` if the peer reached EOF.
    pub fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => self.rbuf.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Push buffered frames to the socket until it would block. Returns
    /// `true` if any bytes moved (stall-timer reset).
    pub fn flush(&mut self) -> io::Result<bool> {
        let mut progressed = false;
        while self.wstart < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wstart..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.wstart += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.wstart == self.wbuf.len() {
            self.wbuf.clear();
            self.wstart = 0;
        } else if self.wstart >= 64 * 1024 {
            self.wbuf.drain(..self.wstart);
            self.wstart = 0;
        }
        if progressed {
            self.last_write_progress = Instant::now();
        }
        Ok(progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        for payload in [&b"abc"[..], &b"defgh"[..], &b"i"[..]] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }
        // Dribble the bytes in one at a time; frames pop out whole.
        let mut out = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(p) = fb.next_frame(64).unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, vec![b"abc".to_vec(), b"defgh".to_vec(), b"i".to_vec()]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buf_rejects_zero_and_oversized_lengths() {
        let mut fb = FrameBuf::new();
        fb.extend(&0u32.to_le_bytes());
        assert_eq!(fb.next_frame(64), Err(0));

        let mut fb = FrameBuf::new();
        fb.extend(&65u32.to_le_bytes());
        assert_eq!(fb.next_frame(64), Err(65));
    }

    #[test]
    fn frame_buf_compacts_consumed_prefix() {
        let mut fb = FrameBuf::new();
        for _ in 0..2000 {
            let payload = [7u8; 8];
            fb.extend(&(payload.len() as u32).to_le_bytes());
            fb.extend(&payload);
            assert!(fb.next_frame(64).unwrap().is_some());
        }
        // Lazy compaction keeps the dead prefix bounded.
        assert!(fb.buf.len() < 8 * 1024, "buffer grew to {}", fb.buf.len());
    }

    #[test]
    fn v1_replies_release_in_arrival_order() {
        // A connected pair just to own a stream; nothing is written.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut conn = Conn::new(stream);

        let s0 = conn.assign_v1_seq();
        let s1 = conn.assign_v1_seq();
        let s2 = conn.assign_v1_seq();
        conn.queue_v1(s2, vec![2]);
        conn.queue_v1(s0, vec![0]);
        assert_eq!(conn.wbuf, [frame(&[0])].concat(), "seq 1 still gates 2");
        conn.queue_v1(s1, vec![1]);
        assert_eq!(conn.wbuf, [frame(&[0]), frame(&[1]), frame(&[2])].concat());
        assert!(conn.v1_parked.is_empty());
    }

    fn frame(p: &[u8]) -> Vec<u8> {
        let mut f = (p.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(p);
        f
    }
}
