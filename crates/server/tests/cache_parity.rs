//! Reply-cache differential suite: a server with the epoch-tagged reply
//! cache enabled must be *observationally invisible* — every reply
//! frame it sends, over every protocol version, must be byte-for-byte
//! what the same server with caching off sends for the same request
//! sequence, and the `STATS` aggregates must agree exactly (cache hits
//! fold the stored counters precisely as cold execution folds its
//! context).
//!
//! The suite drives a cached and an uncached server in lockstep over
//! interleaved query/mutation traces — across all four index structures
//! — comparing raw frames, not decoded replies, so envelope bytes and
//! counter encodings are pinned too. A concurrent phase checks the
//! invariant survives mutations racing queries, and a property test
//! pins the epoch protocol the cache keys on.

use lsdb_core::pointgen::{EndpointGen, UniformGen, WindowGen};
use lsdb_core::{BatchRequest, IndexConfig, LiveIndex, PolygonalMap, SegId, SpatialIndex};
use lsdb_geom::{Point, Segment};
use lsdb_grid::UniformGrid;
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use lsdb_rplus::RPlusTree;
use lsdb_rtree::RTree;
use lsdb_server::protocol::{read_frame, write_frame, FrameEvent, MAX_REPLY_FRAME};
use lsdb_server::{Catalog, Client, Reply, Request, Server, ServerConfig};
use lsdb_tiger::{continent, CountySpec};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Cache pool large enough that nothing in these traces is evicted —
/// eviction behavior has its own unit tests; here the cache must be
/// *full* of opportunities to diverge.
const CACHE_BYTES: u64 = 4 * 1024 * 1024;

fn county_spec(segments: usize) -> CountySpec {
    continent(1, segments, 0xCAC4E).remove(0)
}

fn county_cfg() -> IndexConfig {
    IndexConfig {
        page_size: 1024,
        pool_pages: 64,
        ..Default::default()
    }
}

/// A structure's build entry point, behind the `SpatialIndex` surface
/// the server executes against.
type Build = fn(&PolygonalMap) -> Box<dyn SpatialIndex>;

/// The four structures of the paper's comparison.
fn structures() -> Vec<(&'static str, Build)> {
    vec![
        ("rstar", |map| Box::new(RTree::bulk_load(map, county_cfg()))),
        ("rplus", |map| Box::new(RPlusTree::build(map, county_cfg()))),
        ("pmr", |map| {
            Box::new(PmrQuadtree::build(
                map,
                PmrConfig {
                    index: county_cfg(),
                    ..Default::default()
                },
            ))
        }),
        ("grid", |map| {
            Box::new(UniformGrid::build(map, county_cfg(), 32))
        }),
    ]
}

/// Bind a one-map catalog server over `build(map)`; `cache_bytes > 0`
/// turns the reply cache on.
fn start_server(
    map: &PolygonalMap,
    build: Build,
    cache_bytes: u64,
) -> (
    SocketAddr,
    std::thread::JoinHandle<lsdb_server::ServerReport>,
) {
    let mut catalog = Catalog::new(0, 1);
    catalog.add_live("default", LiveIndex::volatile(build(map)));
    catalog.set_reply_cache_bytes(cache_bytes);
    let config = ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let server = Server::bind_catalog("127.0.0.1:0", catalog, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

/// A deterministic mixed query pool over every cacheable shape.
fn query_pool(map: &PolygonalMap, rounds: usize, seed: u64) -> Vec<Request> {
    let mut endpoints = EndpointGen::new(map, seed ^ 0x1111);
    let mut uniform = UniformGen::new(seed ^ 0x2222);
    let mut windows = WindowGen::new(0.0005, seed ^ 0x4444);
    let mut reqs = Vec::new();
    for i in 0..rounds {
        let (id, p) = endpoints.next_endpoint();
        reqs.push(Request::Incident(p));
        reqs.push(Request::Second { id, at: p });
        let q = uniform.next_point();
        reqs.push(Request::Nearest(q));
        reqs.push(Request::Knn {
            at: q,
            k: (i % 4 + 1) as u32,
        });
        reqs.push(Request::Polygon {
            at: q,
            max_steps: 800,
        });
        reqs.push(Request::Window(windows.next_window()));
    }
    reqs
}

/// The interleaved trace: two identical query passes (second pass hits
/// the cache), a mutation burst (insert + delete + flush, each of which
/// bumps the epoch), then two more passes (miss-and-restore, then hits
/// again). Mutation replies carry LSNs, which are deterministic for a
/// fixed op sequence, so they byte-compare too.
fn interleaved_trace(map: &PolygonalMap, seed: u64) -> Vec<Request> {
    let pool = query_pool(map, 4, seed);
    let mut uniform = UniformGen::new(seed ^ 0x8888);
    let mut trace = Vec::new();
    trace.extend(pool.iter().cloned());
    trace.extend(pool.iter().cloned());
    let a = uniform.next_point();
    let b = Point::new(a.x.saturating_add(5), a.y.saturating_add(3));
    trace.push(Request::Insert(Segment::new(a, b)));
    trace.push(Request::Delete { id: SegId(3) });
    trace.push(Request::Flush);
    trace.extend(pool.iter().cloned());
    trace.extend(pool.iter().cloned());
    trace
}

/// One raw framed exchange: no client-side decoding, the reply frame's
/// exact bytes come back.
fn raw_call(stream: &mut TcpStream, frame: &[u8]) -> Vec<u8> {
    write_frame(stream, frame).unwrap();
    match read_frame(stream, MAX_REPLY_FRAME).unwrap() {
        FrameEvent::Frame(p) => p,
        other => panic!("expected a reply frame, got {other:?}"),
    }
}

fn raw_connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

/// The tentpole invariant: over an interleaved query/mutation trace,
/// every v1 reply frame from the cached server equals the uncached
/// server's byte-for-byte — results *and* the embedded `QueryStats` —
/// and the final v1 `STATS` frames (the aggregate the paper reads)
/// agree too. Run across all four structures; the trace revisits every
/// query after mutations, so hits, misses, and epoch-orphaned entries
/// are all on the path.
#[test]
fn interleaved_trace_frames_byte_identical_across_structures() {
    let spec = county_spec(900);
    let map = lsdb_tiger::generate(&spec);
    let trace = interleaved_trace(&map, 0xF00D);
    for (name, build) in structures() {
        let (cached_addr, cached_handle) = start_server(&map, build, CACHE_BYTES);
        let (plain_addr, plain_handle) = start_server(&map, build, 0);
        let mut cached = raw_connect(cached_addr);
        let mut plain = raw_connect(plain_addr);
        for (i, req) in trace.iter().enumerate() {
            let frame = req.encode();
            let got = raw_call(&mut cached, &frame);
            let want = raw_call(&mut plain, &frame);
            assert_eq!(
                got, want,
                "{name}: v1 frame {i} ({req:?}) diverged with the cache on"
            );
        }
        // The aggregate counters must be indistinguishable: cache hits
        // fold their stored stats exactly as cold execution does.
        let stats_frame = Request::Stats.encode();
        assert_eq!(
            raw_call(&mut cached, &stats_frame),
            raw_call(&mut plain, &stats_frame),
            "{name}: v1 STATS diverged with the cache on"
        );
        // Sanity: the cached server actually served hits — a parity
        // test against a cache that never fires proves nothing.
        let mut client = Client::connect(cached_addr).unwrap();
        let stats = client.stats_v3().unwrap();
        let rc = &stats.maps[0].reply_cache;
        assert!(rc.enabled, "{name}: cache should be on");
        assert!(rc.hits > 0, "{name}: trace produced no cache hits");
        assert!(
            rc.invalidations + rc.misses > rc.hits / 100,
            "{name}: implausible counter mix: {rc:?}"
        );
        client.shutdown().unwrap();
        let mut plain_client = Client::connect(plain_addr).unwrap();
        plain_client.shutdown().unwrap();
        cached_handle.join().unwrap();
        plain_handle.join().unwrap();
    }
}

/// Same invariant over the enveloped protocols: identical queries sent
/// as v1, v2, and v3 frames share one cache entry (the key is the
/// canonical v1 encoding), and each envelope's reply bytes — marker,
/// correlation id, body — match the uncached server's exactly.
#[test]
fn envelope_versions_share_entries_and_stay_byte_identical() {
    let spec = county_spec(700);
    let map = lsdb_tiger::generate(&spec);
    let pool = query_pool(&map, 3, 0xE27);
    let (name, build) = ("rstar", structures()[0].1);
    let (cached_addr, cached_handle) = start_server(&map, build, CACHE_BYTES);
    let (plain_addr, plain_handle) = start_server(&map, build, 0);
    let mut cached = raw_connect(cached_addr);
    let mut plain = raw_connect(plain_addr);
    // Pass 1 primes over v1; passes 2 and 3 replay the same queries as
    // v2 then v3 frames — all hits on the cached server, yet every
    // envelope must still match the uncached run byte-for-byte.
    for (i, req) in pool.iter().enumerate() {
        let frame = req.encode();
        assert_eq!(
            raw_call(&mut cached, &frame),
            raw_call(&mut plain, &frame),
            "{name}: v1 prime frame {i} diverged"
        );
    }
    for (i, req) in pool.iter().enumerate() {
        let corr = 0x1000 + i as u32;
        let frame = req.encode_v2(corr);
        assert_eq!(
            raw_call(&mut cached, &frame),
            raw_call(&mut plain, &frame),
            "{name}: v2 frame {i} diverged"
        );
    }
    for (i, req) in pool.iter().enumerate() {
        let corr = 0x2000 + i as u32;
        let frame = req.encode_v3(corr, 0);
        assert_eq!(
            raw_call(&mut cached, &frame),
            raw_call(&mut plain, &frame),
            "{name}: v3 frame {i} diverged"
        );
    }
    // The v2/v3 replays were pure hits: one miss per distinct query.
    let mut client = Client::connect(cached_addr).unwrap();
    let stats = client.stats_v3().unwrap();
    let rc = &stats.maps[0].reply_cache;
    assert_eq!(
        rc.misses,
        pool.len() as u64,
        "cross-envelope replays must share the v1-keyed entries"
    );
    assert_eq!(rc.hits, 2 * pool.len() as u64);
    client.shutdown().unwrap();
    Client::connect(plain_addr).unwrap().shutdown().unwrap();
    cached_handle.join().unwrap();
    plain_handle.join().unwrap();
}

/// Batches probe per item: a batch whose items are half primed (hits)
/// and half cold (Morton-sorted miss execution) must produce a nested
/// reply frame byte-identical to the uncached server's — carving misses
/// out of a batch changes no item's counters.
#[test]
fn batch_with_mixed_hits_and_misses_is_byte_identical() {
    let spec = county_spec(800);
    let map = lsdb_tiger::generate(&spec);
    let (_, build) = ("rstar", structures()[0].1);
    let (cached_addr, cached_handle) = start_server(&map, build, CACHE_BYTES);
    let (plain_addr, plain_handle) = start_server(&map, build, 0);
    let mut uniform = UniformGen::new(0xBA7C4);
    let points: Vec<Point> = (0..24).map(|_| uniform.next_point()).collect();
    // Prime every other point as a singleton — batch items share the
    // singleton key space, so those become in-batch hits.
    let mut cached = raw_connect(cached_addr);
    let mut plain = raw_connect(plain_addr);
    for p in points.iter().step_by(2) {
        let frame = Request::Nearest(*p).encode();
        assert_eq!(
            raw_call(&mut cached, &frame),
            raw_call(&mut plain, &frame),
            "prime frame diverged"
        );
    }
    let batch = Request::Batch(BatchRequest::Nearest(points.clone()));
    let frame = batch.encode_v2(0xBEEF);
    let got = raw_call(&mut cached, &frame);
    let want = raw_call(&mut plain, &frame);
    assert_eq!(got, want, "mixed hit/miss batch reply diverged");
    // And the batch repeated is all hits — still identical.
    let frame = batch.encode_v2(0xBEF0);
    assert_eq!(
        raw_call(&mut cached, &frame),
        raw_call(&mut plain, &frame),
        "all-hit batch reply diverged"
    );
    let mut client = Client::connect(cached_addr).unwrap();
    let stats = client.stats_v3().unwrap();
    let rc = &stats.maps[0].reply_cache;
    assert_eq!(rc.hits, 12 + points.len() as u64, "12 primed + full replay");
    client.shutdown().unwrap();
    Client::connect(plain_addr).unwrap().shutdown().unwrap();
    cached_handle.join().unwrap();
    plain_handle.join().unwrap();
}

/// Mutations racing queries: readers hammer the cached server while a
/// writer streams inserts (each bumping the epoch). Every concurrent
/// reply must decode cleanly; after the writer quiesces, a replay of
/// the whole query pool must byte-match an uncached server that applied
/// the same mutation sequence.
#[test]
fn concurrent_mutations_quiesce_to_byte_identical_replies() {
    let spec = county_spec(700);
    let map = lsdb_tiger::generate(&spec);
    let (_, build) = ("rstar", structures()[0].1);
    let (cached_addr, cached_handle) = start_server(&map, build, CACHE_BYTES);
    let (plain_addr, plain_handle) = start_server(&map, build, 0);
    let pool = query_pool(&map, 3, 0xC0C0);
    let mut uniform = UniformGen::new(0x111_222);
    let inserts: Vec<Segment> = (0..40)
        .map(|_| {
            let a = uniform.next_point();
            Segment::new(a, Point::new(a.x.saturating_add(4), a.y.saturating_add(6)))
        })
        .collect();

    // Churn phase: two readers loop the pool against the cached server
    // while the writer applies the insert stream there.
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let pool = &pool;
            s.spawn(move || {
                let mut client = Client::connect(cached_addr).unwrap();
                for pass in 0..3 {
                    for (i, req) in pool.iter().enumerate() {
                        if (i as u64 + t + pass).is_multiple_of(2) {
                            let reply = client.call(req).unwrap();
                            assert!(
                                !matches!(reply, Reply::Error { .. }),
                                "concurrent query errored: {reply:?}"
                            );
                        }
                    }
                }
            });
        }
        let inserts = &inserts;
        s.spawn(move || {
            let mut client = Client::connect(cached_addr).unwrap();
            for seg in inserts {
                client.insert(*seg).unwrap();
            }
            client.flush().unwrap();
        });
    });

    // Quiesce: bring the uncached server to the same logical state (the
    // single writer's op order is the op order), then byte-compare a
    // full replay.
    {
        let mut client = Client::connect(plain_addr).unwrap();
        for seg in &inserts {
            client.insert(*seg).unwrap();
        }
        client.flush().unwrap();
    }
    let mut cached = raw_connect(cached_addr);
    let mut plain = raw_connect(plain_addr);
    for (i, req) in pool.iter().enumerate() {
        let frame = req.encode();
        assert_eq!(
            raw_call(&mut cached, &frame),
            raw_call(&mut plain, &frame),
            "post-quiesce frame {i} ({req:?}) diverged"
        );
    }
    // Replay again: now pure hits, still identical.
    for (i, req) in pool.iter().enumerate() {
        let frame = req.encode();
        assert_eq!(
            raw_call(&mut cached, &frame),
            raw_call(&mut plain, &frame),
            "post-quiesce hit frame {i} diverged"
        );
    }
    Client::connect(cached_addr).unwrap().shutdown().unwrap();
    Client::connect(plain_addr).unwrap().shutdown().unwrap();
    cached_handle.join().unwrap();
    plain_handle.join().unwrap();
}

/// The epoch protocol the cache keys on: every applied insert, every
/// applicable delete, and every flush ticks the epoch exactly once; a
/// delete of a never-assigned id does not; and concurrent observers
/// only ever see it move forward.
#[test]
fn epoch_ticks_exactly_once_per_applied_mutation_and_never_regresses() {
    let spec = county_spec(300);
    let map = lsdb_tiger::generate(&spec);
    let base = map.len() as u32;
    let live = std::sync::Arc::new(LiveIndex::volatile(Box::new(RTree::bulk_load(
        &map,
        county_cfg(),
    ))));
    assert_eq!(live.epoch(), 0);

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let live_obs = std::sync::Arc::clone(&live);
        let stop = &stop;
        s.spawn(move || {
            let mut last = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let now = live_obs.epoch();
                assert!(now >= last, "epoch regressed: {last} -> {now}");
                last = now;
                std::thread::yield_now();
            }
        });

        let mut uniform = UniformGen::new(0xE60C);
        let mut expected = 0u64;
        for i in 0..30 {
            let a = uniform.next_point();
            let seg = Segment::new(a, Point::new(a.x.saturating_add(2), a.y));
            live.insert(seg).unwrap();
            expected += 1;
            if i % 3 == 0 {
                // Applicable delete (idempotent re-deletes still log
                // and still tick).
                live.remove(SegId(i as u32 % base)).unwrap();
                expected += 1;
            }
            if i % 10 == 0 {
                live.flush().unwrap();
                expected += 1;
            }
            // Out of range: not an applicable op, not logged, no tick.
            let (removed, _) = live.remove(SegId(u32::MAX - 1)).unwrap();
            assert!(!removed);
            assert_eq!(live.epoch(), expected);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}
