//! End-to-end tests of the TCP query service: concurrent clients must see
//! results and counters byte-identical to in-process execution, malformed
//! requests must come back as structured error frames (not dropped
//! connections), and `SHUTDOWN` must drain gracefully.

use lsdb_core::pointgen::{EndpointGen, UniformGen, WindowGen};
use lsdb_core::{queries, IndexConfig, PolygonalMap, QueryCtx, QueryStats, SpatialIndex};
use lsdb_server::protocol::{decode_reply, read_frame, write_frame, FrameEvent, MAX_REPLY_FRAME};
use lsdb_server::{
    BatchRequest, Client, ErrorCode, QueryRequest, Reply, Request, Server, ServerConfig,
    ServerError,
};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn test_map() -> PolygonalMap {
    lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
        "server-test",
        lsdb_tiger::CountyClass::Suburban,
        900,
        0x5EA5,
    ))
}

fn build(map: &PolygonalMap) -> Box<dyn SpatialIndex> {
    Box::new(lsdb_pmr::PmrQuadtree::build(
        map,
        lsdb_pmr::PmrConfig {
            index: IndexConfig::default(),
            ..Default::default()
        },
    ))
}

const MAX_STEPS: u32 = 2000;

/// A mixed stream covering all seven paper workloads (plus knn): the
/// endpoint queries double as Point1/Point2, the point queries as 1-stage
/// and 2-stage nearest/polygon streams.
fn mixed_stream(map: &PolygonalMap, n: usize, seed: u64) -> Vec<Request> {
    let mut endpoints = EndpointGen::new(map, seed ^ 0x1111);
    let mut uniform = UniformGen::new(seed ^ 0x2222);
    let mut windows = WindowGen::new(0.0001, seed ^ 0x4444);
    let mut reqs = Vec::new();
    for i in 0..n {
        let (id, p) = endpoints.next_endpoint();
        reqs.push(Request::Incident(p));
        reqs.push(Request::Second { id, at: p });
        let q = uniform.next_point();
        reqs.push(Request::Nearest(q));
        reqs.push(Request::Knn {
            at: q,
            k: (i % 5 + 1) as u32,
        });
        reqs.push(Request::Polygon {
            at: q,
            max_steps: MAX_STEPS,
        });
        reqs.push(Request::Window(windows.next_window()));
    }
    reqs
}

/// Execute one request in-process, exactly as the server does.
fn run_in_process(index: &dyn SpatialIndex, req: &Request) -> Reply {
    let mut ctx = QueryCtx::new();
    match *req {
        Request::Incident(p) => Reply::Segs {
            ids: index.find_incident(p, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Second { id, at } => Reply::Segs {
            ids: queries::second_endpoint(index, id, at, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Nearest(p) => Reply::Nearest {
            id: index.nearest(p, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Knn { at, k } => Reply::Segs {
            ids: index.nearest_k(at, k as usize, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Window(w) => Reply::Segs {
            ids: index.window(w, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Polygon { at, max_steps } => {
            let walk = queries::enclosing_polygon(index, at, max_steps as usize, &mut ctx);
            Reply::Polygon {
                walk: walk.map(|w| (w.boundary, w.closed)),
                stats: ctx.stats(),
            }
        }
        _ => panic!("not a spatial query: {req:?}"),
    }
}

fn start_server(
    index: Box<dyn SpatialIndex>,
) -> (
    SocketAddr,
    std::thread::JoinHandle<lsdb_server::ServerReport>,
) {
    let config = ServerConfig {
        workers: 4,
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", index, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

#[test]
fn concurrent_clients_match_in_process_execution_and_drain_cleanly() {
    let map = test_map();
    let index = build(&map);
    let stream = mixed_stream(&map, 25, 0xBEEF);

    // Ground truth: every request executed in-process, plus the summed
    // counters the server's STATS op must report per pass.
    let expected: Vec<Reply> = stream
        .iter()
        .map(|r| run_in_process(index.as_ref(), r))
        .collect();
    let mut expected_totals = QueryStats::default();
    for r in &expected {
        expected_totals.add(r.stats().unwrap());
    }

    let (addr, handle) = start_server(index);
    const CLIENTS: usize = 4;

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let stream = &stream;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
                for (i, req) in stream.iter().enumerate() {
                    let reply = client.call(req).unwrap();
                    assert_eq!(&reply, &expected[i], "client {c}, request {i}: {req:?}");
                }
            });
        }
    });

    // Counters aggregate across all clients exactly: four identical
    // passes, each a plain sum of per-query values.
    let mut client = Client::connect(addr).unwrap();
    let (served, totals) = client.stats().unwrap();
    assert_eq!(served, (CLIENTS * stream.len()) as u64);
    let mut four = QueryStats::default();
    for _ in 0..CLIENTS {
        four.add(expected_totals);
    }
    assert_eq!(totals, four);

    client.shutdown().unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.queries, (CLIENTS * stream.len()) as u64);
    assert_eq!(report.totals, four);
    assert!(report.connections >= (CLIENTS + 1) as u64);

    // The listener is gone: new connections are refused (allow a moment
    // for the OS to tear the socket down).
    std::thread::sleep(Duration::from_millis(100));
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err());
}

#[test]
fn malformed_requests_get_error_frames_not_hangups() {
    let map = test_map();
    let (addr, handle) = start_server(build(&map));

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    let reply_of = |stream: &mut TcpStream| -> Reply {
        match read_frame(stream, MAX_REPLY_FRAME).unwrap() {
            FrameEvent::Frame(p) => Reply::decode(&p).unwrap(),
            other => panic!("expected a frame, got {other:?}"),
        }
    };

    // Garbage opcode -> UnknownOp error frame, connection stays up.
    write_frame(&mut raw, &[0x77, 1, 2, 3]).unwrap();
    match reply_of(&mut raw) {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOp),
        other => panic!("expected error frame, got {other:?}"),
    }

    // Truncated incident request -> Malformed, still connected.
    write_frame(&mut raw, &[0x02, 9, 9]).unwrap();
    match reply_of(&mut raw) {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // Trailing bytes after a valid ping -> Malformed, still connected.
    write_frame(&mut raw, &[0x01, 0xAA]).unwrap();
    match reply_of(&mut raw) {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }

    // The same connection still answers real queries.
    write_frame(&mut raw, &Request::Ping.encode()).unwrap();
    assert_eq!(reply_of(&mut raw), Reply::Pong);

    // An oversized frame declaration gets an error frame, then the
    // connection closes (the stream cannot be resynchronized). The
    // payload is never sent — the declared length alone is the offense.
    let huge = lsdb_server::MAX_REQUEST_FRAME_V2 + 1;
    let mut poison = huge.to_le_bytes().to_vec();
    poison.extend_from_slice(&[0u8; 16]);
    std::io::Write::write_all(&mut raw, &poison).unwrap();
    match reply_of(&mut raw) {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected error frame, got {other:?}"),
    }
    match read_frame(&mut raw, MAX_REPLY_FRAME).unwrap() {
        FrameEvent::Eof => {}
        other => panic!("connection should be closed, got {other:?}"),
    }

    // A bad argument (segment id beyond the map) is a structured error.
    let mut client = Client::connect(addr).unwrap();
    let e = client
        .call(
            &QueryRequest::second_endpoint(
                lsdb_core::SegId(u32::MAX - 1),
                lsdb_geom::Point::new(0, 0),
            )
            .build(),
        )
        .unwrap_err();
    let server_err = e
        .get_ref()
        .and_then(|e| e.downcast_ref::<ServerError>())
        .unwrap();
    assert_eq!(server_err.code, ErrorCode::BadArgument);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn closed_loop_loadgen_reproduces_in_process_counters() {
    let map = test_map();
    let index = build(&map);
    let stream = mixed_stream(&map, 20, 0xF00D);

    let mut expected_totals = QueryStats::default();
    let mut expected_items = 0u64;
    for req in &stream {
        let reply = run_in_process(index.as_ref(), req);
        expected_totals.add(reply.stats().unwrap());
        expected_items += reply.result_size() as u64;
    }

    let (addr, handle) = start_server(index);
    let report = lsdb_server::run_closed_loop(addr, &stream, 4).unwrap();
    assert_eq!(report.queries, stream.len());
    assert_eq!(report.connections, 4);
    assert_eq!(
        report.totals, expected_totals,
        "wire adds latency, never counters"
    );
    assert_eq!(report.result_items, expected_items);
    assert_eq!(report.latencies.len(), stream.len());
    assert!(report.latencies.windows(2).all(|w| w[0] <= w[1]), "sorted");
    assert!(report.p50() <= report.p95() && report.p95() <= report.p99());
    assert!(report.p99() <= report.max_latency());
    assert!(report.throughput_qps() > 0.0);

    Client::connect(addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn pipelined_requests_complete_out_of_order_and_match_sequential() {
    let map = test_map();
    let index = build(&map);
    let stream = mixed_stream(&map, 10, 0xD1CE);

    let expected: Vec<Reply> = stream
        .iter()
        .map(|r| run_in_process(index.as_ref(), r))
        .collect();

    let (addr, handle) = start_server(index);

    // High-level: N interleaved requests on one connection, sent before
    // any reply is read; replies matched by correlation id must be
    // byte-identical to sequential execution.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.is_v2(), "negotiation must land on v2");
    let replies = client.pipeline(&stream).unwrap();
    assert_eq!(replies.len(), expected.len());
    for (i, (got, want)) in replies.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "pipelined request {i}: {:?}", stream[i]);
    }

    // Raw wire: a slow executor-bound query pipelined ahead of an
    // inline-answered ping completes *after* it — replies genuinely
    // leave out of submission order, matched only by correlation id.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let slow = Request::Polygon {
        at: lsdb_geom::Point::new(8192, 8192),
        max_steps: MAX_STEPS,
    };
    let mut both = Vec::new();
    for (corr, req) in [(7u32, &slow), (8u32, &Request::Ping)] {
        let payload = req.encode_v2(corr);
        both.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        both.extend_from_slice(&payload);
    }
    // One write: both frames arrive in one readiness event, so the ping
    // is answered inline before the polygon's completion can be routed.
    std::io::Write::write_all(&mut raw, &both).unwrap();
    let read_reply = |stream: &mut TcpStream| -> (Option<u32>, Reply) {
        match read_frame(stream, MAX_REPLY_FRAME).unwrap() {
            FrameEvent::Frame(p) => decode_reply(&p).unwrap(),
            other => panic!("expected a frame, got {other:?}"),
        }
    };
    let (first_corr, first) = read_reply(&mut raw);
    let (second_corr, second) = read_reply(&mut raw);
    assert_eq!(first_corr, Some(8), "ping overtakes the slow polygon");
    assert_eq!(first, Reply::Pong);
    assert_eq!(second_corr, Some(7));
    assert!(matches!(second, Reply::Polygon { .. }));
    drop(raw);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn v1_client_round_trips_every_op_against_the_v2_server() {
    let map = test_map();
    let index = build(&map);
    let stream = mixed_stream(&map, 6, 0xA11CE);
    let expected: Vec<Reply> = stream
        .iter()
        .map(|r| run_in_process(index.as_ref(), r))
        .collect();

    let (addr, handle) = start_server(index);
    let mut client = Client::connect_v1(addr).unwrap();
    assert!(!client.is_v2());
    client.ping().unwrap();
    for (req, want) in stream.iter().zip(&expected) {
        assert_eq!(&client.call(req).unwrap(), want, "{req:?}");
    }
    let (served, _) = client.stats().unwrap();
    assert_eq!(served, stream.len() as u64);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn batched_execution_matches_singleton_counters_over_the_wire() {
    let map = test_map();
    let index = build(&map);
    let mut windows = WindowGen::new(0.0001, 0xB17C4);
    let rects: Vec<lsdb_geom::Rect> = (0..200).map(|_| windows.next_window()).collect();
    let batch = BatchRequest::Window(rects.clone());

    // Ground truth: each window as a singleton, fresh context.
    let expected: Vec<Reply> = rects
        .iter()
        .map(|&w| run_in_process(index.as_ref(), &Request::Window(w)))
        .collect();

    let (addr, handle) = start_server(index);
    let mut client = Client::connect(addr).unwrap();
    let replies = client.call_batch(&batch).unwrap();
    assert_eq!(replies.len(), expected.len());
    for (i, (got, want)) in replies.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "batch item {i} must be byte-identical");
    }

    // STATS counts each batch item as one query, with the same totals a
    // singleton stream would produce.
    let (served, totals) = client.stats().unwrap();
    assert_eq!(served, rects.len() as u64);
    let mut expected_totals = QueryStats::default();
    for r in &expected {
        expected_totals.add(r.stats().unwrap());
    }
    assert_eq!(totals, expected_totals);

    // A v1 client gets the same answers via transparent unrolling.
    let mut v1 = Client::connect_v1(addr).unwrap();
    let unrolled = v1.call_batch(&batch).unwrap();
    assert_eq!(unrolled, expected);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn open_loop_loadgen_measures_and_matches_counters() {
    let map = test_map();
    let index = build(&map);
    let stream = mixed_stream(&map, 10, 0xFA57);

    let mut expected_totals = QueryStats::default();
    for req in &stream {
        expected_totals.add(run_in_process(index.as_ref(), req).stats().unwrap());
    }

    let (addr, handle) = start_server(index);
    let report = lsdb_server::run_open_loop(addr, &stream, 2, 2000.0).unwrap();
    assert_eq!(report.queries, stream.len());
    assert_eq!(report.totals, expected_totals);
    assert_eq!(report.latencies.len(), stream.len());
    assert!(report.p50() <= report.p99() && report.p99() <= report.p999());
    assert!(report.p999() <= report.max_latency());

    Client::connect(addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn rstar_serves_identically_too() {
    // The server is structure-agnostic: spot-check a second index kind.
    let map = test_map();
    let index: Box<dyn SpatialIndex> = Box::new(lsdb_rtree::RTree::build(
        &map,
        IndexConfig::default(),
        lsdb_rtree::RTreeKind::RStar,
    ));
    let stream = mixed_stream(&map, 8, 0xABBA);
    let expected: Vec<Reply> = stream
        .iter()
        .map(|r| run_in_process(index.as_ref(), r))
        .collect();

    let (addr, handle) = start_server(index);
    let mut client = Client::connect(addr).unwrap();
    for (req, want) in stream.iter().zip(&expected) {
        assert_eq!(&client.call(req).unwrap(), want);
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn live_mutations_apply_over_the_wire_while_readers_run() {
    let map = test_map();
    let index = build(&map);
    let base_len = map.segments.len() as u32;
    let (addr, handle) = start_server(index);

    // Readers hammer queries on their own connections while this thread
    // mutates: no reply may be malformed, every returned id must resolve.
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for seed in 0..2u64 {
            let stop = &stop;
            let map = &map;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let stream = mixed_stream(map, 4, 0xD00D ^ seed);
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    for req in &stream {
                        client.call(req).unwrap();
                    }
                }
            });
        }

        let mut writer = Client::connect(addr).unwrap();
        // A segment tucked into the top-right of the 16K world, where the
        // generated county has no endpoints: queries at its endpoint see
        // exactly it.
        let seg = lsdb_geom::Segment {
            a: lsdb_geom::Point::new(16_001, 16_003),
            b: lsdb_geom::Point::new(16_011, 16_003),
        };
        let (id, lsn) = writer.insert(seg).unwrap();
        assert_eq!(id, lsdb_core::SegId(base_len));
        assert!(lsn > 0);

        match writer.call(&QueryRequest::incident(seg.a).build()).unwrap() {
            Reply::Segs { ids, .. } => assert_eq!(ids, vec![id]),
            other => panic!("unexpected reply {other:?}"),
        }

        let (removed, _) = writer.delete(id).unwrap();
        assert!(removed);
        let (removed, _) = writer.delete(id).unwrap();
        assert!(!removed, "second delete of the same id is a no-op");
        match writer.call(&QueryRequest::incident(seg.a).build()).unwrap() {
            Reply::Segs { ids, .. } => assert!(ids.is_empty()),
            other => panic!("unexpected reply {other:?}"),
        }

        // Flush checkpoints the (volatile) op log; the LSN restarts.
        writer.flush().unwrap();
        let (_, lsn) = writer.insert(seg).unwrap();
        assert!(lsn > 0, "post-checkpoint commits restart the LSN sequence");

        stop.store(true, std::sync::atomic::Ordering::Release);
    });

    Client::connect(addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn acknowledged_wire_mutations_survive_a_server_restart() {
    // Round one: an empty durable store served over TCP; every mutation
    // acknowledged over the wire. Round two: reopen the same files,
    // replay, and the queries must answer as if the server never died.
    let dir = std::env::temp_dir().join(format!("lsdb-server-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pages = dir.join("ops.pages");
    let wal = dir.join("ops.wal");
    let empty = PolygonalMap::new("live", Vec::new());
    let segs: Vec<lsdb_geom::Segment> = (0..40)
        .map(|i| lsdb_geom::Segment {
            a: lsdb_geom::Point::new(i * 10, 0),
            b: lsdb_geom::Point::new(i * 10 + 7, 50),
        })
        .collect();

    let probe = Request::Window(lsdb_geom::Rect::new(-10, -10, 500, 100));
    let served = {
        let base = lsdb_core::FileStorage::create(&pages, 1024).unwrap();
        let log = lsdb_core::FileLog::create(&wal).unwrap();
        let (dmap, _) = lsdb_core::DurableMap::open(Box::new(base), Box::new(log)).unwrap();
        let live = lsdb_core::LiveIndex::new(build(&empty), dmap);
        let config = ServerConfig {
            workers: 2,
            read_timeout: Duration::from_millis(100),
            ..Default::default()
        };
        let server = Server::bind_live("127.0.0.1:0", live, config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut client = Client::connect(addr).unwrap();
        for (i, seg) in segs.iter().enumerate() {
            let (id, _) = client.insert(*seg).unwrap();
            assert_eq!(id.0 as usize, i);
        }
        // Mix in deletes, and checkpoint halfway so recovery exercises
        // both the base-store and the WAL-replay paths.
        client.delete(lsdb_core::SegId(3)).unwrap();
        client.flush().unwrap();
        client.delete(lsdb_core::SegId(17)).unwrap();
        let reply = client.call(&probe).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
        reply
    };

    // "Restart": recover purely from the files and replay into a fresh
    // empty index of the same structure.
    let base = lsdb_core::FileStorage::open(&pages, 1024).unwrap();
    let log = lsdb_core::FileLog::open(&wal).unwrap();
    let (dmap, report) = lsdb_core::DurableMap::open(Box::new(base), Box::new(log)).unwrap();
    assert_eq!(dmap.len(), segs.len() + 2, "all acknowledged ops recovered");
    assert_eq!(
        report.batches, 1,
        "post-checkpoint delete replayed from WAL"
    );
    let mut index = build(&empty);
    dmap.replay_into(index.as_mut());
    let recovered = run_in_process(index.as_ref(), &probe);

    match (&served, &recovered) {
        (Reply::Segs { ids: a, .. }, Reply::Segs { ids: b, .. }) => {
            assert_eq!(a, b, "recovered index answers exactly as the live one did")
        }
        other => panic!("unexpected replies {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
