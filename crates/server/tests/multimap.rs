//! Cross-map isolation suite: one server hosting many county maps under
//! a shared buffer budget must answer every routed query — results *and*
//! per-query paper counters — byte-identically to a dedicated single-map
//! run of that county, including while the budget forces page shedding
//! and the open-map cap forces close/reopen churn.

use lsdb_core::pointgen::{EndpointGen, UniformGen, WindowGen};
use lsdb_core::{queries, IndexConfig, PolygonalMap, QueryCtx, SpatialIndex};
use lsdb_rtree::RTree;
use lsdb_server::protocol::{decode_reply, read_frame, write_frame, FrameEvent, MAX_REPLY_FRAME};
use lsdb_server::{Catalog, Client, ErrorCode, Reply, Request, Server, ServerConfig, ServerError};
use lsdb_tiger::{continent, CountySpec};
use std::net::SocketAddr;
use std::time::Duration;

/// Small pages and a generous per-map pool: the page footprint is real,
/// so a process-wide budget below the combined footprint exerts genuine
/// eviction pressure.
fn county_cfg() -> IndexConfig {
    IndexConfig {
        page_size: 512,
        pool_pages: 256,
        ..Default::default()
    }
}

fn county_index(spec: &CountySpec) -> Box<dyn SpatialIndex> {
    let map = lsdb_tiger::generate(spec);
    Box::new(RTree::bulk_load(&map, county_cfg()))
}

fn catalog_for(specs: &[CountySpec], budget: u64, max_open: usize) -> Catalog {
    let mut catalog = Catalog::new(budget, max_open);
    for spec in specs {
        let spec = spec.clone();
        catalog.add_map(
            &spec.name.clone(),
            Box::new(move || Ok(county_index(&spec))),
        );
    }
    catalog
}

fn start_catalog_server(
    catalog: Catalog,
) -> (
    SocketAddr,
    std::thread::JoinHandle<lsdb_server::ServerReport>,
) {
    let config = ServerConfig {
        workers: 3,
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let server = Server::bind_catalog("127.0.0.1:0", catalog, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

/// A mixed per-county stream over all the paper's query shapes.
fn mixed_stream(map: &PolygonalMap, rounds: usize, seed: u64) -> Vec<Request> {
    let mut endpoints = EndpointGen::new(map, seed ^ 0x1111);
    let mut uniform = UniformGen::new(seed ^ 0x2222);
    let mut windows = WindowGen::new(0.0005, seed ^ 0x4444);
    let mut reqs = Vec::new();
    for i in 0..rounds {
        let (id, p) = endpoints.next_endpoint();
        reqs.push(Request::Incident(p));
        reqs.push(Request::Second { id, at: p });
        let q = uniform.next_point();
        reqs.push(Request::Nearest(q));
        reqs.push(Request::Knn {
            at: q,
            k: (i % 4 + 1) as u32,
        });
        reqs.push(Request::Polygon {
            at: q,
            max_steps: 800,
        });
        reqs.push(Request::Window(windows.next_window()));
    }
    reqs
}

/// The single-map reference: execute `req` on a dedicated index exactly
/// as the server's executor does.
fn run_in_process(index: &dyn SpatialIndex, req: &Request) -> Reply {
    let mut ctx = QueryCtx::new();
    match *req {
        Request::Incident(p) => Reply::Segs {
            ids: index.find_incident(p, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Second { id, at } => Reply::Segs {
            ids: queries::second_endpoint(index, id, at, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Nearest(p) => Reply::Nearest {
            id: index.nearest(p, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Knn { at, k } => Reply::Segs {
            ids: index.nearest_k(at, k as usize, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Window(w) => Reply::Segs {
            ids: index.window(w, &mut ctx),
            stats: ctx.stats(),
        },
        Request::Polygon { at, max_steps } => {
            let walk = queries::enclosing_polygon(index, at, max_steps as usize, &mut ctx);
            Reply::Polygon {
                walk: walk.map(|w| (w.boundary, w.closed)),
                stats: ctx.stats(),
            }
        }
        _ => panic!("not a spatial query: {req:?}"),
    }
}

/// The tentpole acceptance test: 16 county maps behind one server, a
/// budget well below their combined page footprint, queries interleaved
/// round-robin across every map — each reply (ids, walk, *and* the three
/// paper counters) must equal the dedicated single-map run, and the
/// budget must have forced real evictions along the way.
#[test]
fn sixteen_maps_under_budget_answer_byte_identically_to_single_map_runs() {
    const K: usize = 16;
    const SEGS: usize = 1200;
    let specs = continent(K, SEGS, 0xC0FFEE);

    // Dedicated single-map references, one fresh index per county.
    let streams: Vec<Vec<Request>> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| mixed_stream(&lsdb_tiger::generate(spec), 3, 0xA11CE ^ i as u64))
        .collect();
    let expected: Vec<Vec<Reply>> = specs
        .iter()
        .zip(&streams)
        .map(|(spec, stream)| {
            let index = county_index(spec);
            stream
                .iter()
                .map(|req| run_in_process(index.as_ref(), req))
                .collect()
        })
        .collect();
    let combined_footprint: u64 = specs
        .iter()
        .map(|spec| county_index(spec).size_bytes())
        .sum();
    let budget = combined_footprint / 6;
    assert!(budget > 0, "footprint {combined_footprint} too small");

    let (addr, handle) = start_catalog_server(catalog_for(&specs, budget, K));
    let mut client = Client::connect(addr).unwrap();
    assert!(client.is_v3(), "negotiated v{}", client.version());
    let ids: Vec<u32> = specs
        .iter()
        .map(|spec| client.open_map(&spec.name).unwrap().0)
        .collect();

    // Interleave: query j of every map, round-robin — the adversarial
    // schedule for cross-map cache pollution.
    for j in 0..streams[0].len() {
        for m in 0..K {
            let got = client.call_on(ids[m], &streams[m][j]).unwrap();
            assert_eq!(
                got, expected[m][j],
                "map {} query {j} diverged from its single-map run",
                specs[m].name
            );
        }
    }

    let stats = client.stats_v3().unwrap();
    assert_eq!(stats.budget.total, budget);
    assert!(
        stats.budget.used <= stats.budget.total,
        "budget overshot: {} of {}",
        stats.budget.used,
        stats.budget.total
    );
    let evictions: u64 = stats.maps.iter().map(|m| m.cache.evictions).sum();
    assert!(
        evictions > 0,
        "a budget below footprint must force evictions"
    );
    let per_map_queries: u64 = stats.maps.iter().map(|m| m.queries).sum();
    assert_eq!(
        per_map_queries, stats.queries,
        "per-map counters must fold to the aggregate"
    );
    assert_eq!(stats.queries, (K * streams[0].len()) as u64);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Close/reopen churn: an open-map cap far below the map count forces
/// the catalog's clock to close cold maps mid-run; lazily rebuilt maps
/// must keep answering byte-identically.
#[test]
fn lru_close_reopen_churn_preserves_answers_and_counters() {
    const K: usize = 5;
    let specs = continent(K, 700, 0xD15C);
    let streams: Vec<Vec<Request>> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| mixed_stream(&lsdb_tiger::generate(spec), 2, 0xFEED ^ i as u64))
        .collect();
    let expected: Vec<Vec<Reply>> = specs
        .iter()
        .zip(&streams)
        .map(|(spec, stream)| {
            let index = county_index(spec);
            stream
                .iter()
                .map(|req| run_in_process(index.as_ref(), req))
                .collect()
        })
        .collect();

    let (addr, handle) = start_catalog_server(catalog_for(&specs, 0, 2));
    let mut client = Client::connect(addr).unwrap();
    let ids: Vec<u32> = specs
        .iter()
        .map(|spec| client.open_map(&spec.name).unwrap().0)
        .collect();
    // Two full passes: the second pass queries maps the cap closed.
    for _pass in 0..2 {
        for j in 0..streams[0].len() {
            for m in 0..K {
                let got = client.call_on(ids[m], &streams[m][j]).unwrap();
                assert_eq!(got, expected[m][j]);
            }
        }
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The catalog admin surface over the wire: open/list/close round-trips,
/// unknown maps come back as structured `UnknownMap` errors, and pre-v3
/// envelopes keep working against map 0.
#[test]
fn admin_ops_and_version_compat_route_as_specified() {
    let specs = continent(3, 400, 0xBEE);
    let (addr, handle) = start_catalog_server(catalog_for(&specs, 0, 3));
    let mut client = Client::connect(addr).unwrap();

    // LIST sees every map, cold at first.
    let listed = client.list_maps().unwrap();
    assert_eq!(listed.len(), 3);
    assert!(listed.iter().all(|m| !m.open));
    let names: Vec<&str> = listed.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, vec!["c0-0", "c0-1", "c1-0"]);

    // OPEN builds and reports the segment count; CLOSE round-trips.
    let (id, len) = client.open_map("c0-1").unwrap();
    assert_eq!(id, 1);
    assert!(len > 0);
    assert!(client.list_maps().unwrap()[1].open);
    assert!(client.close_map("c0-1").unwrap());
    assert!(!client.close_map("c0-1").unwrap(), "already cold");

    // Unknown names and ids are structured errors, not hangups.
    let err = client.open_map("atlantis").unwrap_err();
    let code = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<ServerError>())
        .map(|se| se.code);
    assert_eq!(code, Some(ErrorCode::UnknownMap));
    let err = client
        .call_on(99, &Request::Nearest(lsdb_geom::Point::new(0, 0)))
        .unwrap_err();
    let code = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<ServerError>())
        .map(|se| se.code);
    assert_eq!(code, Some(ErrorCode::UnknownMap));

    // A v2 frame (no map field) lands on map 0 — same answer as routing
    // to map 0 explicitly over v3.
    let probe = Request::Nearest(lsdb_geom::Point::new(500, 500));
    let via_v3 = client.call_on(0, &probe).unwrap();
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut raw, &probe.encode_v2(7)).unwrap();
    let payload = match read_frame(&mut raw, MAX_REPLY_FRAME).unwrap() {
        FrameEvent::Frame(p) => p,
        other => panic!("expected a reply frame, got {other:?}"),
    };
    let (corr, via_v2) = decode_reply(&payload).unwrap();
    assert_eq!(corr, Some(7));
    assert_eq!(via_v2, via_v3);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Continental build smoke (CI runs this in release): four ~20k-segment
/// counties bulk-build into both packed tree shapes and answer a window
/// probe identically to each other structure's view of the same county.
#[test]
#[ignore = "continental smoke: run in release (cargo test --release -- --ignored)"]
fn four_county_continental_build_smoke() {
    let specs = continent(4, 20_000, 0x51_6D0D);
    for spec in &specs {
        let map = lsdb_tiger::generate(spec);
        assert!(
            map.len() > 15_000,
            "{} came up short: {}",
            spec.name,
            map.len()
        );
        let rtree = RTree::bulk_load(&map, county_cfg());
        let rplus = lsdb_rplus::RPlusTree::bulk_load(&map, county_cfg());
        assert_eq!(rtree.len(), map.len());
        assert_eq!(rplus.len(), map.len());
        let bbox = map.bbox().unwrap();
        let mut ctx = QueryCtx::new();
        let mut a = rtree.window(bbox, &mut ctx);
        let mut b = rplus.window(bbox, &mut ctx);
        a.sort();
        b.sort();
        b.dedup();
        assert_eq!(
            a.len(),
            map.len(),
            "{}: full-extent window must see all",
            spec.name
        );
        assert_eq!(a, b, "{}: packed trees disagree", spec.name);
    }
}
