//! Randomized tests for the geometry kernel. These pin down the exactness
//! contracts every index relies on. Deterministic: each test draws its
//! cases from a fixed-seed [`lsdb_rng::StdRng`] stream.

use lsdb_geom::angle::{ccw_cmp, first_clockwise_from, Dir};
use lsdb_geom::morton::{deinterleave, interleave, Block};
use lsdb_geom::{orient, Dist2, Point, Rect, Segment, MAX_DEPTH, WORLD_SIZE};
use lsdb_rng::StdRng;
use std::cmp::Ordering;

const CASES: usize = 512;

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0..WORLD_SIZE), rng.gen_range(0..WORLD_SIZE))
}

fn rand_segment(rng: &mut StdRng) -> Segment {
    loop {
        let (a, b) = (rand_point(rng), rand_point(rng));
        if a != b {
            return Segment::new(a, b);
        }
    }
}

fn rand_rect(rng: &mut StdRng) -> Rect {
    Rect::bounding(rand_point(rng), rand_point(rng))
}

#[test]
fn orient_is_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(0x6E01);
    for _ in 0..CASES {
        let (a, b, c) = (
            rand_point(&mut rng),
            rand_point(&mut rng),
            rand_point(&mut rng),
        );
        assert_eq!(orient(a, b, c), -orient(b, a, c));
        assert_eq!(orient(a, b, c), orient(b, c, a));
    }
}

#[test]
fn segment_intersection_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x6E02);
    for _ in 0..CASES {
        let (s, t) = (rand_segment(&mut rng), rand_segment(&mut rng));
        assert_eq!(s.intersects(&t), t.intersects(&s));
        assert_eq!(s.properly_intersects(&t), t.properly_intersects(&s));
        // Proper intersection implies intersection.
        if s.properly_intersects(&t) {
            assert!(s.intersects(&t));
        }
        // A segment always intersects itself; self-comparison is also a
        // "proper" intersection because collinear overlap longer than a
        // point violates planarity (the validator never compares a
        // segment against itself, but duplicates must be flagged).
        assert!(s.intersects(&s));
        assert!(s.properly_intersects(&s));
    }
}

#[test]
fn shared_endpoint_always_intersects() {
    let mut rng = StdRng::seed_from_u64(0x6E03);
    for _ in 0..CASES {
        let (a, b, c) = (
            rand_point(&mut rng),
            rand_point(&mut rng),
            rand_point(&mut rng),
        );
        if a == b || a == c {
            continue;
        }
        let s = Segment::new(a, b);
        let t = Segment::new(a, c);
        assert!(s.intersects(&t));
    }
}

#[test]
fn dist2_is_a_lower_bound_on_sampled_points() {
    let mut rng = StdRng::seed_from_u64(0x6E04);
    for _ in 0..CASES {
        let (s, p) = (rand_segment(&mut rng), rand_point(&mut rng));
        let d = s.dist2_point(p);
        // Sample integer points near the segment parameterization.
        for i in 0..=8 {
            let q = Point::new(
                s.a.x + ((s.b.x - s.a.x) as i64 * i / 8) as i32,
                s.a.y + ((s.b.y - s.a.y) as i64 * i / 8) as i32,
            );
            let dq = Dist2::from_int(p.dist2(q));
            if s.contains_point(q) {
                assert!(d <= dq, "on-segment point closer than the segment distance");
            }
        }
        // Exact at the endpoints.
        assert!(d <= Dist2::from_int(p.dist2(s.a)));
        assert!(d <= Dist2::from_int(p.dist2(s.b)));
        // Zero iff the point is on the segment.
        assert_eq!(d == Dist2::ZERO, s.contains_point(p));
    }
}

#[test]
fn dist2_ordering_matches_f64_when_far_apart() {
    let mut rng = StdRng::seed_from_u64(0x6E05);
    for _ in 0..CASES {
        let (s, t, p) = (
            rand_segment(&mut rng),
            rand_segment(&mut rng),
            rand_point(&mut rng),
        );
        let (ds, dt) = (s.dist2_point(p), t.dist2_point(p));
        let (fs, ft) = (ds.to_f64(), dt.to_f64());
        if (fs - ft).abs() > 1e-3 * (fs + ft + 1.0) {
            assert_eq!(ds.cmp(&dt), fs.partial_cmp(&ft).unwrap());
        }
    }
}

#[test]
fn rect_point_distance_consistent_with_containment() {
    let mut rng = StdRng::seed_from_u64(0x6E06);
    for _ in 0..CASES {
        let (r, p) = (rand_rect(&mut rng), rand_point(&mut rng));
        assert_eq!(r.dist2_point(p) == 0, r.contains_point(p));
    }
}

#[test]
fn rect_ops_are_consistent() {
    let mut rng = StdRng::seed_from_u64(0x6E07);
    for _ in 0..CASES {
        let (a, b) = (rand_rect(&mut rng), rand_rect(&mut rng));
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
        if let Some(i) = a.intersection(&b) {
            assert!(a.contains_rect(&i) && b.contains_rect(&i));
            assert_eq!(a.overlap_area(&b), i.area());
        }
        assert!(a.enlargement(&b) >= 0);
    }
}

#[test]
fn rect_segment_intersection_respects_endpoints() {
    let mut rng = StdRng::seed_from_u64(0x6E08);
    for _ in 0..CASES {
        let (r, s) = (rand_rect(&mut rng), rand_segment(&mut rng));
        if r.contains_point(s.a) || r.contains_point(s.b) {
            assert!(r.intersects_segment(&s));
        }
        if !r.intersects(&s.bbox()) {
            assert!(!r.intersects_segment(&s));
        }
    }
}

#[test]
fn morton_roundtrip_and_block_structure() {
    let mut rng = StdRng::seed_from_u64(0x6E09);
    for _ in 0..CASES {
        let p = rand_point(&mut rng);
        let depth: u8 = rng.gen_range(0..=MAX_DEPTH);
        let (x, y) = (p.x as u32, p.y as u32);
        assert_eq!(deinterleave(interleave(x, y)), (x, y));
        let b = Block::containing(p, depth);
        assert!(b.rect().contains_point(p));
        assert_eq!(Block::from_code(b.code(), depth), b);
        if depth > 0 {
            let parent = b.parent().unwrap();
            assert!(parent.rect().contains_rect(&b.rect()));
            assert!(parent.children().contains(&b));
            assert_eq!(Block::containing(p, depth - 1), parent);
        }
    }
}

#[test]
fn morton_codes_of_children_are_ordered() {
    let mut rng = StdRng::seed_from_u64(0x6E0A);
    for _ in 0..CASES {
        let p = rand_point(&mut rng);
        let depth: u8 = rng.gen_range(0..MAX_DEPTH as i32) as u8;
        let b = Block::containing(p, depth);
        let kids = b.children();
        for w in kids.windows(2) {
            assert!(w[0].code() < w[1].code(), "children in Z-order");
        }
        // All descendants' codes fall in the parent's code range.
        let span = 1u64 << (2 * (MAX_DEPTH - depth) as u32);
        for k in kids {
            let kc = k.code() as u64;
            assert!(kc >= b.code() as u64 && kc < b.code() as u64 + span);
        }
    }
}

#[test]
fn first_clockwise_returns_valid_choice() {
    let mut rng = StdRng::seed_from_u64(0x6E0B);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..8);
        let dirs: Vec<Dir> = (0..n)
            .map(|_| (rng.gen_range(-50i32..=50), rng.gen_range(-50i32..=50)))
            .filter(|&(x, y)| (x, y) != (0, 0))
            .map(|(x, y)| Dir::new(x, y))
            .collect();
        if dirs.is_empty() {
            continue;
        }
        let from = (rng.gen_range(-50i32..=50), rng.gen_range(-50i32..=50));
        if from == (0, 0) {
            continue;
        }
        let from = Dir::new(from.0, from.1);
        let idx = first_clockwise_from(from, &dirs).unwrap();
        assert!(idx < dirs.len());
        let chosen = dirs[idx];
        if chosen.same_direction(from) {
            // Dead-end fallback: legal only when every direction equals
            // `from`.
            assert!(dirs.iter().all(|d| d.same_direction(from)));
        } else {
            // No other direction lies strictly clockwise between `from`
            // and the chosen one. Clockwise-between test via CCW order:
            // d is strictly between chosen and from (going CCW from
            // chosen to from) iff chosen < d < from in the rotated order.
            for d in &dirs {
                if d.same_direction(from) || d.same_direction(chosen) {
                    continue;
                }
                assert!(
                    !cw_between(from, *d, chosen),
                    "{d:?} is strictly clockwise-closer to {from:?} than {chosen:?}"
                );
            }
        }
    }
}

/// Is `d` encountered strictly before `limit` when rotating clockwise
/// from `from`? Equivalently: `d` lies strictly inside the CCW-exclusive
/// cyclic interval `(limit, from)`.
fn cw_between(from: Dir, d: Dir, limit: Dir) -> bool {
    let lt = |a: Dir, b: Dir| ccw_cmp(a, b) == Ordering::Less;
    match ccw_cmp(limit, from) {
        Ordering::Less => lt(limit, d) && lt(d, from),
        Ordering::Greater => lt(limit, d) || lt(d, from),
        Ordering::Equal => false,
    }
}
