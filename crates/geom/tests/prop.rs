//! Property tests for the geometry kernel. These pin down the exactness
//! contracts every index relies on.

use lsdb_geom::angle::{ccw_cmp, first_clockwise_from, Dir};
use lsdb_geom::morton::{deinterleave, interleave, Block};
use lsdb_geom::{orient, Dist2, Point, Rect, Segment, MAX_DEPTH, WORLD_SIZE};
use proptest::prelude::*;
use std::cmp::Ordering;

fn arb_point() -> impl Strategy<Value = Point> {
    (0..WORLD_SIZE, 0..WORLD_SIZE).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point())
        .prop_filter("non-degenerate", |(a, b)| a != b)
        .prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::bounding(a, b))
}

proptest! {
    #[test]
    fn orient_is_antisymmetric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(orient(a, b, c), -orient(b, a, c));
        prop_assert_eq!(orient(a, b, c), orient(b, c, a));
    }

    #[test]
    fn segment_intersection_is_symmetric(s in arb_segment(), t in arb_segment()) {
        prop_assert_eq!(s.intersects(&t), t.intersects(&s));
        prop_assert_eq!(s.properly_intersects(&t), t.properly_intersects(&s));
        // Proper intersection implies intersection.
        if s.properly_intersects(&t) {
            prop_assert!(s.intersects(&t));
        }
        // A segment always intersects itself; self-comparison is also a
        // "proper" intersection because collinear overlap longer than a
        // point violates planarity (the validator never compares a
        // segment against itself, but duplicates must be flagged).
        prop_assert!(s.intersects(&s));
        prop_assert!(s.properly_intersects(&s));
    }

    #[test]
    fn shared_endpoint_always_intersects(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assume!(a != b && a != c);
        let s = Segment::new(a, b);
        let t = Segment::new(a, c);
        prop_assert!(s.intersects(&t));
    }

    #[test]
    fn dist2_is_a_lower_bound_on_sampled_points(s in arb_segment(), p in arb_point()) {
        let d = s.dist2_point(p);
        // Sample integer points near the segment parameterization.
        for i in 0..=8 {
            let q = Point::new(
                s.a.x + ((s.b.x - s.a.x) as i64 * i / 8) as i32,
                s.a.y + ((s.b.y - s.a.y) as i64 * i / 8) as i32,
            );
            // q is close to (not exactly on) the segment, so compare
            // against its own exact distance plus its offset: the triangle
            // inequality in squared form is messy, so use endpoints only
            // for the exact check and samples for a sanity bound.
            let dq = Dist2::from_int(p.dist2(q));
            if s.contains_point(q) {
                prop_assert!(d <= dq, "on-segment point closer than the segment distance");
            }
        }
        // Exact at the endpoints.
        prop_assert!(d <= Dist2::from_int(p.dist2(s.a)));
        prop_assert!(d <= Dist2::from_int(p.dist2(s.b)));
        // Zero iff the point is on the segment.
        prop_assert_eq!(d == Dist2::ZERO, s.contains_point(p));
    }

    #[test]
    fn dist2_ordering_matches_f64_when_far_apart(
        s in arb_segment(), t in arb_segment(), p in arb_point()
    ) {
        let (ds, dt) = (s.dist2_point(p), t.dist2_point(p));
        let (fs, ft) = (ds.to_f64(), dt.to_f64());
        if (fs - ft).abs() > 1e-3 * (fs + ft + 1.0) {
            prop_assert_eq!(ds.cmp(&dt), fs.partial_cmp(&ft).unwrap());
        }
    }

    #[test]
    fn rect_point_distance_consistent_with_containment(r in arb_rect(), p in arb_point()) {
        prop_assert_eq!(r.dist2_point(p) == 0, r.contains_point(p));
    }

    #[test]
    fn rect_ops_are_consistent(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
            prop_assert_eq!(a.overlap_area(&b), i.area());
        }
        prop_assert!(a.enlargement(&b) >= 0);
    }

    #[test]
    fn rect_segment_intersection_respects_endpoints(r in arb_rect(), s in arb_segment()) {
        if r.contains_point(s.a) || r.contains_point(s.b) {
            prop_assert!(r.intersects_segment(&s));
        }
        if !r.intersects(&s.bbox()) {
            prop_assert!(!r.intersects_segment(&s));
        }
    }

    #[test]
    fn morton_roundtrip_and_block_structure(p in arb_point(), depth in 0u8..=MAX_DEPTH) {
        let (x, y) = (p.x as u32, p.y as u32);
        prop_assert_eq!(deinterleave(interleave(x, y)), (x, y));
        let b = Block::containing(p, depth);
        prop_assert!(b.rect().contains_point(p));
        prop_assert_eq!(Block::from_code(b.code(), depth), b);
        if depth > 0 {
            let parent = b.parent().unwrap();
            prop_assert!(parent.rect().contains_rect(&b.rect()));
            prop_assert!(parent.children().contains(&b));
            prop_assert_eq!(Block::containing(p, depth - 1), parent);
        }
    }

    #[test]
    fn morton_codes_of_children_are_ordered(p in arb_point(), depth in 0u8..MAX_DEPTH) {
        let b = Block::containing(p, depth);
        let kids = b.children();
        for w in kids.windows(2) {
            prop_assert!(w[0].code() < w[1].code(), "children in Z-order");
        }
        // All descendants' codes fall in the parent's code range.
        let span = 1u64 << (2 * (MAX_DEPTH - depth) as u32);
        for k in kids {
            let kc = k.code() as u64;
            prop_assert!(kc >= b.code() as u64 && kc < b.code() as u64 + span);
        }
    }

    #[test]
    fn first_clockwise_returns_valid_choice(
        dirs in prop::collection::vec((-50i32..=50, -50i32..=50), 1..8),
        from in (-50i32..=50, -50i32..=50),
    ) {
        let dirs: Vec<Dir> = dirs
            .into_iter()
            .filter(|&(x, y)| (x, y) != (0, 0))
            .map(|(x, y)| Dir::new(x, y))
            .collect();
        prop_assume!(!dirs.is_empty());
        prop_assume!(from != (0, 0));
        let from = Dir::new(from.0, from.1);
        let idx = first_clockwise_from(from, &dirs).unwrap();
        prop_assert!(idx < dirs.len());
        let chosen = dirs[idx];
        if chosen.same_direction(from) {
            // Dead-end fallback: legal only when every direction equals
            // `from`.
            prop_assert!(dirs.iter().all(|d| d.same_direction(from)));
        } else {
            // No other direction lies strictly clockwise between `from`
            // and the chosen one. Clockwise-between test via CCW order:
            // d is strictly between chosen and from (going CCW from
            // chosen to from) iff chosen < d < from in the rotated order.
            for d in &dirs {
                if d.same_direction(from) || d.same_direction(chosen) {
                    continue;
                }
                let closer_cw = cw_between(from, *d, chosen);
                prop_assert!(
                    !closer_cw,
                    "{d:?} is strictly clockwise-closer to {from:?} than {chosen:?}"
                );
            }
        }
    }
}

/// Is `d` encountered strictly before `limit` when rotating clockwise
/// from `from`? Equivalently: `d` lies strictly inside the CCW-exclusive
/// cyclic interval `(limit, from)`.
fn cw_between(from: Dir, d: Dir, limit: Dir) -> bool {
    let lt = |a: Dir, b: Dir| ccw_cmp(a, b) == Ordering::Less;
    match ccw_cmp(limit, from) {
        Ordering::Less => lt(limit, d) && lt(d, from),
        Ordering::Greater => lt(limit, d) || lt(d, from),
        Ordering::Equal => false,
    }
}
