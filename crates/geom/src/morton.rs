//! Morton (Z-order) locational codes for the PMR quadtree.
//!
//! A quadtree block at depth `d` in the 16K×16K world has side `2^(14-d)`
//! and a lower-left corner whose coordinates are multiples of that side.
//! Its locational code is the bit interleaving of the lower-left corner's
//! `x` and `y` coordinates (x in the even bit positions), exactly as in the
//! paper's linear-quadtree implementation. Sorting (code, depth) pairs
//! yields the Z-order traversal of the decomposition, which is what keeps
//! the line segments of one bucket contiguous in the B-tree.

use crate::{Point, Rect, MAX_DEPTH, WORLD_SIZE};

/// Interleave the low 16 bits of `x` (even positions) and `y` (odd
/// positions) into a 32-bit Morton code.
pub fn interleave(x: u32, y: u32) -> u32 {
    debug_assert!(x < (1 << 16) && y < (1 << 16));
    spread(x) | (spread(y) << 1)
}

/// Inverse of [`interleave`].
pub fn deinterleave(code: u32) -> (u32, u32) {
    (unspread(code), unspread(code >> 1))
}

fn spread(v: u32) -> u32 {
    let mut v = v & 0xFFFF;
    v = (v | (v << 8)) & 0x00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

fn unspread(v: u32) -> u32 {
    let mut v = v & 0x5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF;
    v
}

/// A quadtree block: depth plus lower-left corner.
///
/// Depth 0 is the whole world; depth [`MAX_DEPTH`] is a single pixel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Block {
    /// Depth in the quadtree, `0..=MAX_DEPTH`.
    pub depth: u8,
    /// Lower-left corner; multiples of the block side.
    pub x: i32,
    pub y: i32,
}

impl Block {
    /// The root block covering the whole world.
    pub const ROOT: Block = Block {
        depth: 0,
        x: 0,
        y: 0,
    };

    /// Side length of the block.
    pub fn side(&self) -> i32 {
        WORLD_SIZE >> self.depth
    }

    /// The closed region covered by this block: `[x, x+side) × [y, y+side)`
    /// in continuous space, represented as the closed integer rect
    /// `[x, x+side-1] × [y, y+side-1]`.
    ///
    /// Sibling block regions are disjoint under this convention; a segment
    /// endpoint lying exactly on an internal decomposition line belongs to
    /// the block on its upper/right side, but segments are inserted into
    /// every block whose **continuous** region they touch (see
    /// [`Block::region_touches_segment`]).
    pub fn rect(&self) -> Rect {
        Rect::new(
            self.x,
            self.y,
            self.x + self.side() - 1,
            self.y + self.side() - 1,
        )
    }

    /// The block's region extended by one grid unit on the top and right so
    /// that geometry lying exactly on the upper decomposition lines is
    /// also considered to touch this block. This mirrors the paper's
    /// continuous-space block semantics where a q-edge that only grazes a
    /// block boundary still belongs to the block.
    fn closed_region(&self) -> Rect {
        let s = self.side();
        Rect::new(
            self.x,
            self.y,
            (self.x + s).min(WORLD_SIZE - 1),
            (self.y + s).min(WORLD_SIZE - 1),
        )
    }

    /// Does a line segment touch this block's (closed) region?
    pub fn region_touches_segment(&self, seg: &crate::Segment) -> bool {
        self.closed_region().intersects_segment(seg)
    }

    /// Does a point lie in this block's (closed) region?
    pub fn region_touches_point(&self, p: Point) -> bool {
        self.closed_region().contains_point(p)
    }

    /// Morton locational code of the lower-left corner.
    pub fn code(&self) -> u32 {
        interleave(self.x as u32, self.y as u32)
    }

    /// Reconstruct a block from its code and depth.
    pub fn from_code(code: u32, depth: u8) -> Block {
        let (x, y) = deinterleave(code);
        Block {
            depth,
            x: x as i32,
            y: y as i32,
        }
    }

    /// The four children (SW, SE, NW, NE in Morton order).
    ///
    /// Panics if the block is already at [`MAX_DEPTH`].
    pub fn children(&self) -> [Block; 4] {
        assert!(self.depth < MAX_DEPTH, "cannot split a pixel block");
        let h = self.side() / 2;
        let d = self.depth + 1;
        [
            Block {
                depth: d,
                x: self.x,
                y: self.y,
            },
            Block {
                depth: d,
                x: self.x + h,
                y: self.y,
            },
            Block {
                depth: d,
                x: self.x,
                y: self.y + h,
            },
            Block {
                depth: d,
                x: self.x + h,
                y: self.y + h,
            },
        ]
    }

    /// The parent block (None for the root).
    pub fn parent(&self) -> Option<Block> {
        if self.depth == 0 {
            return None;
        }
        let s = self.side() * 2;
        Some(Block {
            depth: self.depth - 1,
            x: self.x & !(s - 1),
            y: self.y & !(s - 1),
        })
    }

    /// The leaf-depth block containing point `p`, at a given depth.
    pub fn containing(p: Point, depth: u8) -> Block {
        debug_assert!(depth <= MAX_DEPTH);
        let mask = !((WORLD_SIZE >> depth) - 1);
        Block {
            depth,
            x: p.x & mask,
            y: p.y & mask,
        }
    }

    /// Exact squared distance from `p` to the block region.
    pub fn dist2_point(&self, p: Point) -> i64 {
        self.closed_region().dist2_point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    #[test]
    fn interleave_roundtrip() {
        for &(x, y) in &[(0u32, 0u32), (1, 0), (0, 1), (12345, 9876), (16383, 16383)] {
            let c = interleave(x, y);
            assert_eq!(deinterleave(c), (x, y));
        }
    }

    #[test]
    fn interleave_known_values() {
        // x bits land in even positions.
        assert_eq!(interleave(1, 0), 0b01);
        assert_eq!(interleave(0, 1), 0b10);
        assert_eq!(interleave(3, 0), 0b0101);
        assert_eq!(interleave(0b10, 0b11), 0b1110);
    }

    #[test]
    fn morton_order_is_z_order() {
        // Within a 2x2 arrangement of depth-1 blocks, Morton order is
        // SW, SE, NW, NE.
        let half = WORLD_SIZE / 2;
        let sw = Block {
            depth: 1,
            x: 0,
            y: 0,
        };
        let se = Block {
            depth: 1,
            x: half,
            y: 0,
        };
        let nw = Block {
            depth: 1,
            x: 0,
            y: half,
        };
        let ne = Block {
            depth: 1,
            x: half,
            y: half,
        };
        let mut codes = [sw.code(), se.code(), nw.code(), ne.code()];
        let orig = codes;
        codes.sort_unstable();
        assert_eq!(codes, orig);
    }

    #[test]
    fn children_cover_parent_disjointly() {
        let b = Block {
            depth: 2,
            x: 4096,
            y: 8192,
        };
        let kids = b.children();
        let area: i64 = kids
            .iter()
            .map(|k| (k.side() as i64) * (k.side() as i64))
            .sum();
        assert_eq!(area, (b.side() as i64) * (b.side() as i64));
        for k in &kids {
            assert!(b.rect().contains_rect(&k.rect()));
            assert_eq!(k.parent(), Some(b));
        }
        // Pairwise disjoint (exclusive regions).
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(!kids[i].rect().intersects(&kids[j].rect()));
            }
        }
    }

    #[test]
    fn code_roundtrip_through_block() {
        let b = Block {
            depth: 5,
            x: 512 * 3,
            y: 512 * 7,
        };
        assert_eq!(Block::from_code(b.code(), 5), b);
    }

    #[test]
    fn containing_point() {
        let p = Point::new(5000, 12000);
        let b = Block::containing(p, 3);
        assert!(b.rect().contains_point(p));
        assert_eq!(b.side(), WORLD_SIZE / 8);
        assert_eq!(b.x % b.side(), 0);
        assert_eq!(b.y % b.side(), 0);
        assert_eq!(Block::containing(p, 0), Block::ROOT);
    }

    #[test]
    fn region_touches_segment_on_boundary() {
        // A segment running along the top edge of the SW quadrant touches
        // both the SW and NW quadrants in continuous space.
        let half = WORLD_SIZE / 2;
        let seg = Segment::new(Point::new(10, half), Point::new(100, half));
        let kids = Block::ROOT.children();
        assert!(kids[0].region_touches_segment(&seg), "SW (grazes top edge)");
        assert!(kids[2].region_touches_segment(&seg), "NW (contains it)");
        assert!(!kids[1].region_touches_segment(&seg), "SE");
        assert!(!kids[3].region_touches_segment(&seg), "NE");
    }

    #[test]
    fn dist2_point_to_block() {
        let b = Block {
            depth: 1,
            x: 0,
            y: 0,
        };
        assert_eq!(b.dist2_point(Point::new(100, 100)), 0);
        let far = Point::new(WORLD_SIZE - 1, WORLD_SIZE - 1);
        assert!(b.dist2_point(far) > 0);
    }

    #[test]
    #[should_panic]
    fn cannot_split_pixel() {
        let b = Block {
            depth: MAX_DEPTH,
            x: 0,
            y: 0,
        };
        let _ = b.children();
    }
}
