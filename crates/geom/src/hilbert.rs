//! Hilbert-curve locational codes.
//!
//! Where the Morton code ([`crate::morton`]) interleaves bits — cheap, but
//! with long jumps between some adjacent cells — the Hilbert curve visits
//! every cell of a `2^order × 2^order` grid so that consecutive codes are
//! always 4-neighbours. That stronger locality is what makes Hilbert order
//! the classic choice for *packing* spatial entries (Hilbert-packed
//! R-trees) and for the intra-node entry-ordering experiment of the
//! SIMD-ified R-tree scanning literature: entries sorted by Hilbert code
//! cluster survivors of a window predicate into runs, which is visible in
//! the per-block survivor masks of a wide-vector scan kernel.

/// Map a cell `(x, y)` of the `2^order × 2^order` grid to its distance
/// along the Hilbert curve. `order` must be in `1..=31`; coordinates must
/// be `< 2^order`.
///
/// Standard iterative quadrant-rotation formulation: walk the bits from
/// most to least significant, accumulating each quadrant's contribution
/// and rotating/reflecting the remaining subsquare into canonical
/// orientation.
pub fn hilbert_xy2d(order: u32, mut x: u32, mut y: u32) -> u64 {
    debug_assert!((1..=31).contains(&order));
    debug_assert!(x < (1 << order) && y < (1 << order));
    let mut d: u64 = 0;
    let mut s: u32 = 1 << (order - 1);
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the subsquare so the curve's entry/exit corners line up.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (s.wrapping_mul(2) - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (s.wrapping_mul(2) - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_1_visits_the_four_cells_in_u_shape() {
        // The order-1 curve: (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(hilbert_xy2d(1, 0, 0), 0);
        assert_eq!(hilbert_xy2d(1, 0, 1), 1);
        assert_eq!(hilbert_xy2d(1, 1, 1), 2);
        assert_eq!(hilbert_xy2d(1, 1, 0), 3);
    }

    #[test]
    fn is_a_bijection_and_consecutive_codes_are_neighbours() {
        let order = 4;
        let n = 1u32 << order;
        let mut seen = vec![None; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_xy2d(order, x, y) as usize;
                assert!(seen[d].is_none(), "code {d} hit twice");
                seen[d] = Some((x, y));
            }
        }
        for w in seen.windows(2) {
            let (x0, y0) = w[0].unwrap();
            let (x1, y1) = w[1].unwrap();
            let step = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(step, 1, "curve jumps from {:?} to {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn full_width_coordinates_do_not_overflow() {
        let top = (1u32 << 16) - 1;
        // Distances over the full 2^16 grid fit u64 (max is 2^32 - 1).
        assert!(hilbert_xy2d(16, top, top) < 1u64 << 32);
        assert_eq!(hilbert_xy2d(16, 0, 0), 0);
    }
}
