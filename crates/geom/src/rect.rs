use crate::{Point, Segment};
use std::fmt;

/// An axis-aligned rectangle with **closed** bounds `[min.x, max.x] ×
/// [min.y, max.y]`.
///
/// Degenerate rectangles (zero width and/or height) are legal — they arise
/// as minimum bounding rectangles of axis-parallel segments, which dominate
/// urban road maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Build from corner coordinates. Panics in debug builds if inverted.
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        debug_assert!(x0 <= x1 && y0 <= y1, "inverted rect {x0},{y0},{x1},{y1}");
        Rect {
            min: Point::new(x0, y0),
            max: Point::new(x1, y1),
        }
    }

    /// The minimum bounding rectangle of two points (any order).
    pub fn bounding(a: Point, b: Point) -> Self {
        Rect {
            min: a.min_with(b),
            max: a.max_with(b),
        }
    }

    /// A degenerate rectangle containing exactly one point.
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    pub fn width(&self) -> i64 {
        (self.max.x - self.min.x) as i64
    }

    pub fn height(&self) -> i64 {
        (self.max.y - self.min.y) as i64
    }

    /// Area of the closed rectangle, counted as `width * height` in
    /// continuous space (a degenerate rect has area 0).
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Half-perimeter (margin), the quantity minimized by the R*-tree split
    /// axis selection.
    pub fn margin(&self) -> i64 {
        self.width() + self.height()
    }

    pub fn contains_point(&self, p: Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    pub fn contains_rect(&self, r: &Rect) -> bool {
        self.min.x <= r.min.x
            && self.min.y <= r.min.y
            && r.max.x <= self.max.x
            && r.max.y <= self.max.y
    }

    /// Closed-boundary intersection test (touching rectangles intersect).
    pub fn intersects(&self, r: &Rect) -> bool {
        self.min.x <= r.max.x
            && r.min.x <= self.max.x
            && self.min.y <= r.max.y
            && r.min.y <= self.max.y
    }

    /// The intersection rectangle, if non-empty.
    pub fn intersection(&self, r: &Rect) -> Option<Rect> {
        if !self.intersects(r) {
            return None;
        }
        Some(Rect {
            min: self.min.max_with(r.min),
            max: self.max.min_with(r.max),
        })
    }

    /// Area of overlap with `r` (0 when disjoint; touching rects overlap
    /// with zero area).
    pub fn overlap_area(&self, r: &Rect) -> i64 {
        match self.intersection(r) {
            Some(i) => i.area(),
            None => 0,
        }
    }

    /// Smallest rectangle containing both `self` and `r`.
    pub fn union(&self, r: &Rect) -> Rect {
        Rect {
            min: self.min.min_with(r.min),
            max: self.max.max_with(r.max),
        }
    }

    /// How much `self.area()` grows if enlarged to also cover `r`.
    pub fn enlargement(&self, r: &Rect) -> i64 {
        self.union(r).area() - self.area()
    }

    /// Exact squared distance from `p` to the closed rectangle (0 inside).
    pub fn dist2_point(&self, p: Point) -> i64 {
        let dx = if p.x < self.min.x {
            (self.min.x - p.x) as i64
        } else if p.x > self.max.x {
            (p.x - self.max.x) as i64
        } else {
            0
        };
        let dy = if p.y < self.min.y {
            (self.min.y - p.y) as i64
        } else if p.y > self.max.y {
            (p.y - self.max.y) as i64
        } else {
            0
        };
        dx * dx + dy * dy
    }

    /// Center of the rectangle in doubled coordinates (exact midpoint
    /// without rounding): returns `(2*cx, 2*cy)`.
    pub fn center2(&self) -> (i64, i64) {
        (
            self.min.x as i64 + self.max.x as i64,
            self.min.y as i64 + self.max.y as i64,
        )
    }

    /// Exact test: does the closed rectangle intersect the closed segment?
    ///
    /// True iff an endpoint lies inside, or the segment crosses one of the
    /// four boundary edges. All tests are exact integer orientation tests.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        // Quick reject on bounding boxes.
        if !self.intersects(&s.bbox()) {
            return false;
        }
        if self.contains_point(s.a) || self.contains_point(s.b) {
            return true;
        }
        let c0 = Point::new(self.min.x, self.min.y);
        let c1 = Point::new(self.max.x, self.min.y);
        let c2 = Point::new(self.max.x, self.max.y);
        let c3 = Point::new(self.min.x, self.max.y);
        s.intersects(&Segment::new(c0, c1))
            || s.intersects(&Segment::new(c1, c2))
            || s.intersects(&Segment::new(c2, c3))
            || s.intersects(&Segment::new(c3, c0))
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{},{}..{},{}]",
            self.min.x, self.min.y, self.max.x, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i32, y0: i32, x1: i32, y1: i32) -> Rect {
        Rect::new(x0, y0, x1, y1)
    }

    #[test]
    fn area_margin() {
        let a = r(0, 0, 4, 3);
        assert_eq!(a.area(), 12);
        assert_eq!(a.margin(), 7);
        assert_eq!(Rect::point(Point::new(5, 5)).area(), 0);
    }

    #[test]
    fn containment() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains_rect(&r(0, 0, 10, 10)));
        assert!(a.contains_rect(&r(2, 3, 4, 5)));
        assert!(!a.contains_rect(&r(2, 3, 11, 5)));
        assert!(a.contains_point(Point::new(10, 10)));
        assert!(!a.contains_point(Point::new(10, 11)));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = r(0, 0, 10, 10);
        let b = r(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(r(5, 5, 10, 10)));
        assert_eq!(a.overlap_area(&b), 25);
        // Touching rects intersect with zero overlap area.
        let c = r(10, 0, 20, 10);
        assert!(a.intersects(&c));
        assert_eq!(a.overlap_area(&c), 0);
        // Disjoint.
        let d = r(11, 11, 12, 12);
        assert!(!a.intersects(&d));
        assert_eq!(a.intersection(&d), None);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(0, 0, 2, 2);
        let b = r(4, 4, 6, 6);
        assert_eq!(a.union(&b), r(0, 0, 6, 6));
        assert_eq!(a.enlargement(&b), 36 - 4);
        assert_eq!(a.enlargement(&r(1, 1, 2, 2)), 0);
    }

    #[test]
    fn dist2_point() {
        let a = r(2, 2, 6, 6);
        assert_eq!(a.dist2_point(Point::new(4, 4)), 0, "inside");
        assert_eq!(a.dist2_point(Point::new(2, 6)), 0, "corner");
        assert_eq!(a.dist2_point(Point::new(0, 4)), 4, "left of");
        assert_eq!(a.dist2_point(Point::new(0, 0)), 8, "diagonal");
        assert_eq!(a.dist2_point(Point::new(9, 10)), 9 + 16);
    }

    #[test]
    fn segment_intersection_cases() {
        let a = r(2, 2, 6, 6);
        // Fully inside.
        assert!(a.intersects_segment(&Segment::new(Point::new(3, 3), Point::new(4, 4))));
        // Crossing straight through without endpoints inside.
        assert!(a.intersects_segment(&Segment::new(Point::new(0, 4), Point::new(10, 4))));
        // Diagonal crossing a corner region.
        assert!(a.intersects_segment(&Segment::new(Point::new(0, 4), Point::new(4, 0))));
        // Touching a corner exactly.
        assert!(a.intersects_segment(&Segment::new(Point::new(0, 8), Point::new(2, 6))));
        // Near miss outside a corner.
        assert!(!a.intersects_segment(&Segment::new(Point::new(0, 7), Point::new(1, 8))));
        // Completely outside.
        assert!(!a.intersects_segment(&Segment::new(Point::new(7, 7), Point::new(9, 9))));
        // Collinear with an edge, overlapping it.
        assert!(a.intersects_segment(&Segment::new(Point::new(0, 2), Point::new(10, 2))));
    }

    #[test]
    fn center2_is_exact_doubled_midpoint() {
        assert_eq!(r(0, 0, 3, 5).center2(), (3, 5));
        assert_eq!(r(2, 2, 4, 4).center2(), (6, 6));
    }
}
