//! Exact integer geometry kernel for line-segment databases.
//!
//! All coordinates live on the integer grid `[0, 2^14)²` used by the paper
//! (maps are normalized to a 16K×16K region, giving a PMR quadtree maximum
//! depth of 14). Every predicate in this crate is **exact**: orientation
//! tests use `i64`, and point-to-segment distances are represented as exact
//! rationals ([`Dist2`]) compared by `i128` cross-multiplication, so
//! nearest-neighbour orderings never suffer floating-point ties.
//!
//! The kernel provides:
//!
//! * [`Point`], [`Segment`], [`Rect`] primitives,
//! * intersection predicates (segment/segment, segment/rect),
//! * exact squared distances ([`Dist2`]) from points to points, rectangles
//!   and segments,
//! * Morton (Z-order / locational) codes for the quadtree ([`morton`]),
//! * Hilbert-curve codes for locality-ordered entry packing ([`hilbert`]),
//! * clockwise angular ordering around a vertex for polygon face traversal
//!   ([`angle`]).

pub mod angle;
pub mod dist;
pub mod hilbert;
pub mod morton;
mod point;
mod rect;
mod segment;

pub use dist::Dist2;
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;

/// Side of the 16K×16K world the paper's maps are normalized to (2^14).
pub const WORLD_SIZE: i32 = 1 << 14;

/// Maximum quadtree depth for a [`WORLD_SIZE`] world (blocks of side 1).
pub const MAX_DEPTH: u8 = 14;

/// The rectangle covering the whole normalized world, `[0, 16383]²` closed.
pub fn world_rect() -> Rect {
    Rect::new(0, 0, WORLD_SIZE - 1, WORLD_SIZE - 1)
}

/// Sign of the cross product `(b - a) × (c - a)`.
///
/// Returns `> 0` if `c` lies to the left of the directed line `a -> b`,
/// `< 0` if to the right, and `0` if the three points are collinear.
/// Exact for all coordinates `|x| < 2^30`.
pub fn orient(a: Point, b: Point, c: Point) -> i64 {
    let abx = (b.x - a.x) as i64;
    let aby = (b.y - a.y) as i64;
    let acx = (c.x - a.x) as i64;
    let acy = (c.y - a.y) as i64;
    abx * acy - aby * acx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient_signs() {
        let a = Point::new(0, 0);
        let b = Point::new(10, 0);
        assert!(orient(a, b, Point::new(5, 5)) > 0, "left turn");
        assert!(orient(a, b, Point::new(5, -5)) < 0, "right turn");
        assert_eq!(orient(a, b, Point::new(20, 0)), 0, "collinear");
    }

    #[test]
    fn orient_extreme_coordinates() {
        // No overflow at the corners of the world.
        let a = Point::new(0, 0);
        let b = Point::new(WORLD_SIZE - 1, WORLD_SIZE - 1);
        let c = Point::new(WORLD_SIZE - 1, 0);
        assert!(orient(a, b, c) < 0);
        assert!(orient(a, c, b) > 0);
    }

    #[test]
    fn world_rect_bounds() {
        let w = world_rect();
        assert!(w.contains_point(Point::new(0, 0)));
        assert!(w.contains_point(Point::new(16383, 16383)));
        assert!(!w.contains_point(Point::new(16384, 0)));
    }
}
