use std::fmt;

/// A point on the integer grid.
///
/// Ordered lexicographically by `(x, y)`, which gives a stable canonical
/// ordering for segment endpoints and map vertices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    pub x: i32,
    pub y: i32,
}

impl Point {
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Exact squared Euclidean distance to `other`.
    pub fn dist2(self, other: Point) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }

    /// Component-wise minimum.
    pub fn min_with(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max_with(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_basics() {
        assert_eq!(Point::new(0, 0).dist2(Point::new(3, 4)), 25);
        assert_eq!(Point::new(5, 5).dist2(Point::new(5, 5)), 0);
        assert_eq!(Point::new(-2, 1).dist2(Point::new(2, 1)), 16);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(1, 9) < Point::new(2, 0));
        assert!(Point::new(1, 1) < Point::new(1, 2));
    }

    #[test]
    fn min_max_with() {
        let a = Point::new(1, 7);
        let b = Point::new(3, 2);
        assert_eq!(a.min_with(b), Point::new(1, 2));
        assert_eq!(a.max_with(b), Point::new(3, 7));
    }
}
