//! Exact angular ordering of directions around a vertex.
//!
//! The enclosing-polygon query (paper query 4) walks the boundary of the
//! face containing a query point. At each vertex the walk must pick, among
//! the incident edges, the one that comes **first in clockwise order** from
//! the reversed incoming direction — the standard planar face-traversal
//! rule. Angles are never computed numerically: directions are compared by
//! half-plane plus an exact cross-product test.

use crate::Point;
use std::cmp::Ordering;

/// An integer direction vector (not necessarily normalized; never zero).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dir {
    pub dx: i32,
    pub dy: i32,
}

impl Dir {
    pub fn new(dx: i32, dy: i32) -> Self {
        debug_assert!(dx != 0 || dy != 0, "zero direction");
        Dir { dx, dy }
    }

    /// Direction of the vector from `from` to `to`.
    pub fn between(from: Point, to: Point) -> Self {
        Dir::new(to.x - from.x, to.y - from.y)
    }

    /// 0 for angles in `[0°, 180°)` (counting from the +x axis, CCW),
    /// 1 for `[180°, 360°)`.
    fn half(self) -> u8 {
        if self.dy > 0 || (self.dy == 0 && self.dx > 0) {
            0
        } else {
            1
        }
    }

    fn cross(self, other: Dir) -> i64 {
        self.dx as i64 * other.dy as i64 - self.dy as i64 * other.dx as i64
    }

    /// True if `self` and `other` point the same way (collinear, same sign).
    pub fn same_direction(self, other: Dir) -> bool {
        self.cross(other) == 0
            && (self.dx as i64 * other.dx as i64 + self.dy as i64 * other.dy as i64) > 0
    }
}

/// Total counterclockwise order on directions, starting from the +x axis.
///
/// Directions that are positive multiples of each other compare equal.
pub fn ccw_cmp(a: Dir, b: Dir) -> Ordering {
    match a.half().cmp(&b.half()) {
        Ordering::Equal => {
            let c = a.cross(b);
            if c > 0 {
                Ordering::Less
            } else if c < 0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        other => other,
    }
}

/// Among `dirs`, find the index of the direction that comes first when
/// rotating **clockwise** from `from`, excluding directions equal to
/// `from` itself unless nothing else exists (a dead-end vertex, where the
/// face walk doubles back along the incoming edge).
///
/// Returns `None` only if `dirs` is empty.
pub fn first_clockwise_from(from: Dir, dirs: &[Dir]) -> Option<usize> {
    let mut best: Option<usize> = None;
    // Clockwise-first from `from` = predecessor of `from` in CCW order,
    // wrapping around. Pick the max CCW direction strictly below `from`;
    // if none, the global max.
    let mut best_below: Option<usize> = None;
    let mut best_any: Option<usize> = None;
    for (i, &d) in dirs.iter().enumerate() {
        if d.same_direction(from) {
            // Candidate only as a dead-end fallback.
            if best.is_none() {
                best = Some(i);
            }
            continue;
        }
        match best_any {
            None => best_any = Some(i),
            Some(j) => {
                if ccw_cmp(dirs[j], d) == Ordering::Less {
                    best_any = Some(i);
                }
            }
        }
        if ccw_cmp(d, from) == Ordering::Less {
            match best_below {
                None => best_below = Some(i),
                Some(j) => {
                    if ccw_cmp(dirs[j], d) == Ordering::Less {
                        best_below = Some(i);
                    }
                }
            }
        }
    }
    best_below.or(best_any).or(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(dx: i32, dy: i32) -> Dir {
        Dir::new(dx, dy)
    }

    #[test]
    fn ccw_order_of_compass_points() {
        // CCW from +x: E < NE < N < NW < W < SW < S < SE.
        let dirs = [
            d(1, 0),
            d(1, 1),
            d(0, 1),
            d(-1, 1),
            d(-1, 0),
            d(-1, -1),
            d(0, -1),
            d(1, -1),
        ];
        for w in dirs.windows(2) {
            assert_eq!(
                ccw_cmp(w[0], w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn scaled_directions_compare_equal() {
        assert_eq!(ccw_cmp(d(2, 3), d(4, 6)), Ordering::Equal);
        assert!(d(2, 3).same_direction(d(4, 6)));
        assert!(!d(2, 3).same_direction(d(-2, -3)));
    }

    #[test]
    fn first_clockwise_basic() {
        // From W (180°), going clockwise we pass NW (135°), N (90°), ...
        let from = d(-1, 0);
        let dirs = [d(0, 1), d(1, 0), d(0, -1)];
        // Clockwise from 180°: N (90°) comes before E (0°) before S (270°).
        assert_eq!(first_clockwise_from(from, &dirs), Some(0));
        let dirs2 = [d(1, 0), d(0, -1)];
        assert_eq!(first_clockwise_from(from, &dirs2), Some(0), "E next");
        let dirs3 = [d(0, -1), d(-1, 1)];
        // Clockwise from 180°: NW (135°) is first.
        assert_eq!(first_clockwise_from(from, &dirs3), Some(1));
    }

    #[test]
    fn first_clockwise_wraps_around() {
        // From E (0°): clockwise immediately wraps to SE (315°) etc.
        let from = d(1, 0);
        let dirs = [d(0, 1), d(1, -1)];
        assert_eq!(first_clockwise_from(from, &dirs), Some(1));
        // Only a direction CCW-above remains: wrap to it.
        let dirs2 = [d(0, 1)];
        assert_eq!(first_clockwise_from(from, &dirs2), Some(0));
    }

    #[test]
    fn dead_end_falls_back_to_incoming() {
        let from = d(1, 0);
        let dirs = [d(2, 0)]; // same direction as `from`
        assert_eq!(first_clockwise_from(from, &dirs), Some(0));
        assert_eq!(first_clockwise_from(from, &[]), None);
    }

    #[test]
    fn square_face_walk_turns_correctly() {
        // Unit square CCW walk: at (1,0) coming from (0,0), the interior
        // (left) face boundary continues to (1,1).
        let v = Point::new(1, 0);
        let incoming_rev = Dir::between(v, Point::new(0, 0));
        let outs = [
            Dir::between(v, Point::new(0, 0)),
            Dir::between(v, Point::new(1, 1)),
        ];
        assert_eq!(first_clockwise_from(incoming_rev, &outs), Some(1));
    }
}
