use crate::{orient, Dist2, Point, Rect};
use std::fmt;

/// A closed line segment between two grid points.
///
/// Segments in a polygonal map are undirected: `Segment::new` does **not**
/// canonicalize endpoint order (the map layer does that when it matters),
/// but [`Segment::canonical`] is available.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// The same segment with endpoints in lexicographic order.
    pub fn canonical(self) -> Self {
        if self.a <= self.b {
            self
        } else {
            Segment::new(self.b, self.a)
        }
    }

    /// Minimum bounding rectangle.
    pub fn bbox(&self) -> Rect {
        Rect::bounding(self.a, self.b)
    }

    /// Exact squared length.
    pub fn len2(&self) -> i64 {
        self.a.dist2(self.b)
    }

    /// True if the segment is a single point.
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Given one endpoint, return the other. Panics if `p` is not an
    /// endpoint (callers look endpoints up from the segment table, so a
    /// mismatch is a logic error).
    pub fn other_endpoint(&self, p: Point) -> Point {
        if self.a == p {
            self.b
        } else {
            assert_eq!(self.b, p, "point {:?} is not an endpoint of {:?}", p, self);
            self.a
        }
    }

    /// True if `p` is one of the two endpoints.
    pub fn has_endpoint(&self, p: Point) -> bool {
        self.a == p || self.b == p
    }

    /// Exact test: does `p` lie on the closed segment?
    pub fn contains_point(&self, p: Point) -> bool {
        orient(self.a, self.b, p) == 0 && self.bbox().contains_point(p)
    }

    /// Exact closed-segment intersection test, including collinear overlap
    /// and shared endpoints.
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);
        if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
        {
            return true;
        }
        (d1 == 0 && other.bbox().contains_point(self.a))
            || (d2 == 0 && other.bbox().contains_point(self.b))
            || (d3 == 0 && self.bbox().contains_point(other.a))
            || (d4 == 0 && self.bbox().contains_point(other.b))
    }

    /// True if the segments cross at a point interior to **both** (shared
    /// endpoints and touching do not count). Used by the planarity
    /// validator: a planar map may share endpoints but never properly
    /// cross.
    pub fn properly_intersects(&self, other: &Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);
        if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
        {
            return true;
        }
        // Collinear overlap in more than a single shared endpoint is also a
        // planarity violation.
        if d1 == 0 && d2 == 0 && d3 == 0 && d4 == 0 {
            let sb = self.bbox();
            let ob = other.bbox();
            if let Some(i) = sb.intersection(&ob) {
                return i.min != i.max;
            }
        }
        // One endpoint strictly inside the other segment (a T-junction not
        // at a vertex) is a violation for our maps, which are vertex-noded.
        for (seg, p) in [
            (other, self.a),
            (other, self.b),
            (self, other.a),
            (self, other.b),
        ] {
            if seg.contains_point(p) && !seg.has_endpoint(p) {
                return true;
            }
        }
        false
    }

    /// Exact squared distance from `p` to the closed segment, as a rational.
    pub fn dist2_point(&self, p: Point) -> Dist2 {
        let abx = (self.b.x - self.a.x) as i64;
        let aby = (self.b.y - self.a.y) as i64;
        let apx = (p.x - self.a.x) as i64;
        let apy = (p.y - self.a.y) as i64;
        let dot = abx * apx + aby * apy;
        if dot <= 0 || self.is_degenerate() {
            return Dist2::from_int(p.dist2(self.a));
        }
        let len2 = abx * abx + aby * aby;
        if dot >= len2 {
            return Dist2::from_int(p.dist2(self.b));
        }
        let cross = abx * apy - aby * apx;
        Dist2::new((cross as i128) * (cross as i128), len2 as i128)
    }
}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}-{:?}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: i32, ay: i32, bx: i32, by: i32) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn bbox_and_canonical() {
        let seg = s(5, 1, 2, 7);
        assert_eq!(seg.bbox(), Rect::new(2, 1, 5, 7));
        assert_eq!(seg.canonical().a, Point::new(2, 7));
    }

    #[test]
    fn other_endpoint() {
        let seg = s(1, 1, 4, 5);
        assert_eq!(seg.other_endpoint(Point::new(1, 1)), Point::new(4, 5));
        assert_eq!(seg.other_endpoint(Point::new(4, 5)), Point::new(1, 1));
    }

    #[test]
    #[should_panic]
    fn other_endpoint_panics_on_non_endpoint() {
        s(1, 1, 4, 5).other_endpoint(Point::new(0, 0));
    }

    #[test]
    fn contains_point() {
        let seg = s(0, 0, 10, 10);
        assert!(seg.contains_point(Point::new(5, 5)));
        assert!(seg.contains_point(Point::new(0, 0)));
        assert!(!seg.contains_point(Point::new(5, 6)));
        assert!(
            !seg.contains_point(Point::new(11, 11)),
            "collinear but past end"
        );
    }

    #[test]
    fn intersections() {
        // Proper crossing.
        assert!(s(0, 0, 10, 10).intersects(&s(0, 10, 10, 0)));
        // Shared endpoint.
        assert!(s(0, 0, 5, 5).intersects(&s(5, 5, 9, 0)));
        // T-junction.
        assert!(s(0, 0, 10, 0).intersects(&s(5, 0, 5, 7)));
        // Collinear overlap.
        assert!(s(0, 0, 10, 0).intersects(&s(5, 0, 15, 0)));
        // Collinear but disjoint.
        assert!(!s(0, 0, 4, 0).intersects(&s(5, 0, 9, 0)));
        // Parallel.
        assert!(!s(0, 0, 10, 0).intersects(&s(0, 1, 10, 1)));
        // Near miss.
        assert!(!s(0, 0, 10, 10).intersects(&s(6, 5, 12, 5)));
    }

    #[test]
    fn proper_intersections() {
        assert!(s(0, 0, 10, 10).properly_intersects(&s(0, 10, 10, 0)));
        // Shared endpoint is fine.
        assert!(!s(0, 0, 5, 5).properly_intersects(&s(5, 5, 9, 0)));
        // Touching at interior point (T-junction) violates planarity.
        assert!(s(0, 0, 10, 0).properly_intersects(&s(5, 0, 5, 7)));
        // Collinear overlap violates.
        assert!(s(0, 0, 10, 0).properly_intersects(&s(5, 0, 15, 0)));
        // Collinear meeting at exactly one endpoint is fine.
        assert!(!s(0, 0, 5, 0).properly_intersects(&s(5, 0, 9, 0)));
        // Disjoint.
        assert!(!s(0, 0, 4, 0).properly_intersects(&s(0, 2, 4, 2)));
    }

    #[test]
    fn dist2_point_regions() {
        let seg = s(0, 0, 10, 0);
        // Nearest to interior (perpendicular projection).
        assert_eq!(seg.dist2_point(Point::new(5, 3)), Dist2::from_int(9));
        // Nearest to endpoint a.
        assert_eq!(seg.dist2_point(Point::new(-3, 4)), Dist2::from_int(25));
        // Nearest to endpoint b.
        assert_eq!(seg.dist2_point(Point::new(13, -4)), Dist2::from_int(25));
        // On the segment.
        assert_eq!(seg.dist2_point(Point::new(7, 0)), Dist2::from_int(0));
        // Diagonal segment: exact rational distance. dist² from (0,2) to
        // the line through (0,0)-(2,2) is 2 (cross = -4, len2 = 8 -> 16/8).
        let diag = s(0, 0, 2, 2);
        assert_eq!(diag.dist2_point(Point::new(0, 2)), Dist2::new(16, 8));
        assert_eq!(diag.dist2_point(Point::new(0, 2)), Dist2::from_int(2));
    }

    #[test]
    fn dist2_degenerate_segment() {
        let seg = s(3, 3, 3, 3);
        assert_eq!(seg.dist2_point(Point::new(0, -1)), Dist2::from_int(25));
    }
}
