//! Exact squared distances as rationals.
//!
//! The squared distance from a grid point to a grid segment is a rational
//! `cross² / |AB|²`. Comparing two such values by cross-multiplication in
//! `i128` is exact for all world coordinates, so nearest-neighbour searches
//! over the index and over a brute-force scan always agree — there are no
//! floating-point ties to break.

use std::cmp::Ordering;

/// An exact non-negative squared distance `num / den` with `den > 0`.
#[derive(Clone, Copy, Debug)]
pub struct Dist2 {
    num: i128,
    den: i128,
}

impl Dist2 {
    /// Exact zero.
    pub const ZERO: Dist2 = Dist2 { num: 0, den: 1 };

    /// Construct from a numerator/denominator pair. `den` must be positive.
    pub fn new(num: i128, den: i128) -> Self {
        debug_assert!(den > 0, "Dist2 denominator must be positive");
        debug_assert!(num >= 0, "Dist2 must be non-negative");
        Dist2 { num, den }
    }

    /// An exact integer squared distance (e.g. point-point or point-rect).
    pub fn from_int(d2: i64) -> Self {
        Dist2 {
            num: d2 as i128,
            den: 1,
        }
    }

    /// Approximate value as `f64` — for reporting only, never for ordering.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    pub fn is_zero(self) -> bool {
        self.num == 0
    }
}

impl PartialEq for Dist2 {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Dist2 {}

impl PartialOrd for Dist2 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist2 {
    fn cmp(&self, other: &Self) -> Ordering {
        // num ≤ 2^62, den ≤ 2^31 ⇒ products ≤ 2^93, exact in i128.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl From<i64> for Dist2 {
    fn from(d2: i64) -> Self {
        Dist2::from_int(d2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_rationals_compare_equal() {
        assert_eq!(Dist2::new(4, 2), Dist2::from_int(2));
        assert_eq!(Dist2::new(9, 3), Dist2::new(27, 9));
    }

    #[test]
    fn ordering() {
        assert!(Dist2::new(1, 3) < Dist2::new(1, 2));
        assert!(Dist2::from_int(5) > Dist2::new(49, 10));
        assert!(Dist2::ZERO < Dist2::new(1, 1_000_000));
        assert!(Dist2::ZERO.is_zero());
    }

    #[test]
    fn to_f64_is_close() {
        assert!((Dist2::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_overflow_at_world_scale() {
        // Worst case: cross ≈ 2·16384² = 2^29, cross² ≈ 2^58; den ≈ 2^31.
        let big = Dist2::new((1i128 << 58) + 1, (1 << 31) - 1);
        let small = Dist2::new(1 << 58, 1 << 31);
        assert!(big > small);
    }
}
