//! Acceptance check for locality-sorted batch execution: every item of a
//! Morton-sorted batch must be **byte-identical** — answer and per-query
//! counter snapshot alike — to running the same query alone on a freshly
//! reset context, across all four structure families (PMR quadtree,
//! R+-tree, R*-tree, uniform grid).
//!
//! The window and polygon workloads are checked per item over 1000
//! queries combined (500 each): those are the set-oriented workloads the
//! batch engine exists for, and the ones where warm page pins and the
//! segment mini-cache would be most visible if the charge-replay
//! bookkeeping leaked.

use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind};
use lsdb_core::{execute_batch, queries, BatchAnswer, BatchRequest, IndexConfig, QueryCtx};

const QUERIES: usize = 500;

fn four_structures() -> [IndexKind; 4] {
    [
        IndexKind::Pmr,
        IndexKind::RPlus,
        IndexKind::RStar,
        IndexKind::Grid(16),
    ]
}

#[test]
fn window_and_polygon_batches_are_byte_identical_to_singletons() {
    let map = lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
        "batch-parity",
        lsdb_tiger::CountyClass::Suburban,
        1500,
        0xC4A5,
    ));
    let wb = QueryWorkbench::new(&map, QUERIES, 0xC4A5);
    let cfg = IndexConfig::default();

    for kind in four_structures() {
        let idx = build_index(kind, &map, cfg);
        let index = idx.as_ref();
        for w in [Workload::Range, Workload::PolygonTwoStage] {
            let req = wb.batch(w);
            let mut batch_ctx = QueryCtx::new();
            let items = execute_batch(index, &req, &mut batch_ctx);
            assert_eq!(items.len(), QUERIES, "{kind:?} {w:?}");

            // Singleton reference: one fresh context per query, exactly
            // what `QueryWorkbench::run` does.
            let mut ctx = QueryCtx::new();
            for (i, item) in items.iter().enumerate() {
                ctx.reset();
                let answer = match &req {
                    BatchRequest::Window(v) => BatchAnswer::Segs(index.window(v[i], &mut ctx)),
                    BatchRequest::Polygon { points, max_steps } => BatchAnswer::Polygon(
                        queries::enclosing_polygon(index, points[i], *max_steps as usize, &mut ctx)
                            .map(|walk| (walk.boundary, walk.closed)),
                    ),
                    other => panic!("unexpected batch shape {other:?}"),
                };
                assert_eq!(item.answer, answer, "{kind:?} {w:?} item {i}: answer");
                assert_eq!(item.stats, ctx.stats(), "{kind:?} {w:?} item {i}: counters");
            }
        }
    }
}

#[test]
fn remaining_batch_shapes_are_byte_identical_to_singletons() {
    // The point and nearest shapes (plus knn, which has no workload) get
    // the same per-item treatment on a smaller stream.
    let map = lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
        "batch-parity-pts",
        lsdb_tiger::CountyClass::Urban,
        900,
        0x5EED,
    ));
    let wb = QueryWorkbench::new(&map, 60, 0x5EED);
    let cfg = IndexConfig::default();

    for kind in four_structures() {
        let idx = build_index(kind, &map, cfg);
        let index = idx.as_ref();
        let knn = BatchRequest::Knn(wb.uniform_points.iter().map(|&p| (p, 3)).collect());
        let shapes = [
            wb.batch(Workload::Point1),
            wb.batch(Workload::Point2),
            wb.batch(Workload::NearestTwoStage),
            knn,
        ];
        for req in shapes {
            let mut batch_ctx = QueryCtx::new();
            let items = execute_batch(index, &req, &mut batch_ctx);
            let mut ctx = QueryCtx::new();
            for (i, item) in items.iter().enumerate() {
                ctx.reset();
                let answer = match &req {
                    BatchRequest::Incident(v) => {
                        BatchAnswer::Segs(index.find_incident(v[i], &mut ctx))
                    }
                    BatchRequest::Second(v) => {
                        let (id, at) = v[i];
                        BatchAnswer::Segs(queries::second_endpoint(index, id, at, &mut ctx))
                    }
                    BatchRequest::Nearest(v) => BatchAnswer::Nearest(index.nearest(v[i], &mut ctx)),
                    BatchRequest::Knn(v) => {
                        let (at, k) = v[i];
                        BatchAnswer::Segs(index.nearest_k(at, k as usize, &mut ctx))
                    }
                    other => panic!("unexpected batch shape {other:?}"),
                };
                assert_eq!(item.answer, answer, "{kind:?} item {i}: answer");
                assert_eq!(item.stats, ctx.stats(), "{kind:?} item {i}: counters");
            }
        }
    }
}
