//! Live-mutation parity guard: an index mutated through [`LiveIndex`]
//! while readers query it concurrently must end up answering the seven
//! paper workloads byte-identically to one that applied the same ops
//! serially with no readers present — for all four structures.
//!
//! Along the way, every reader snapshot taken at a *stable* epoch (the
//! generation counter did not move during the query) must equal the
//! precomputed answer for exactly that many applied ops: readers never
//! observe a half-applied mutation, because writers take the exclusive
//! lock only after the op has committed.

use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind};
use lsdb_core::{IndexConfig, LiveIndex, MapOp, PolygonalMap, QueryCtx, SegId, SpatialIndex};
use lsdb_geom::Rect;
use std::sync::atomic::{AtomicBool, Ordering};

fn four_kinds() -> [IndexKind; 4] {
    [
        IndexKind::RStar,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::Grid(64),
    ]
}

fn small_map() -> PolygonalMap {
    lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
        "live-test",
        lsdb_tiger::CountyClass::Suburban,
        120,
        0x11FE,
    ))
}

/// Same mixed history as the crash tests: inserts in segment order with
/// a delete after every tenth insert.
fn op_history(map: &PolygonalMap) -> Vec<MapOp> {
    let mut ops = Vec::new();
    for (i, seg) in map.segments.iter().enumerate() {
        ops.push(MapOp::Insert(*seg));
        if i % 10 == 9 {
            ops.push(MapOp::Delete(SegId((i - 5) as u32)));
        }
    }
    ops
}

fn probe_window() -> Rect {
    Rect::new(0, 0, 8192, 8192)
}

fn empty_index(kind: IndexKind) -> Box<dyn SpatialIndex> {
    let empty = PolygonalMap::new("live", Vec::new());
    build_index(kind, &empty, IndexConfig::default())
}

#[test]
fn concurrent_readers_see_only_whole_mutations_and_final_state_matches_serial() {
    let map = small_map();
    let ops = op_history(&map);

    for kind in four_kinds() {
        // Precompute the probe-window answer after every op prefix: the
        // epoch counter equals the number of applied ops, so a reader
        // that saw a stable epoch k must see exactly `expected[k]`.
        let mut scratch = empty_index(kind);
        let mut ctx = QueryCtx::new();
        let mut expected: Vec<Vec<SegId>> = vec![scratch.window(probe_window(), &mut ctx)];
        for op in &ops {
            match *op {
                MapOp::Insert(seg) => {
                    let id = scratch.seg_table_mut().push(seg);
                    scratch.insert(id);
                }
                MapOp::Delete(id) => {
                    scratch.remove(id);
                }
            }
            ctx.reset();
            expected.push(scratch.window(probe_window(), &mut ctx));
        }

        let live = LiveIndex::volatile(empty_index(kind));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let live = &live;
                let stop = &stop;
                let expected = &expected;
                scope.spawn(move || {
                    let mut ctx = QueryCtx::new();
                    let mut stable_reads = 0u64;
                    loop {
                        // Check *before* reading so one more read always
                        // runs after the writer finishes: that read sees
                        // the final (stable) epoch, so every reader
                        // verifies at least one snapshot even if it was
                        // scheduled late.
                        let done = stop.load(Ordering::Acquire);
                        let before = live.epoch();
                        ctx.reset();
                        let ids = live.with_read(|index| index.window(probe_window(), &mut ctx));
                        let after = live.epoch();
                        if before == after {
                            assert_eq!(
                                ids, expected[before as usize],
                                "stable-epoch read at epoch {before} does not match \
                                 the serial prefix"
                            );
                            stable_reads += 1;
                        }
                        if done {
                            break;
                        }
                    }
                    assert!(stable_reads > 0, "reader never saw a stable epoch");
                });
            }

            for op in &ops {
                match *op {
                    MapOp::Insert(seg) => {
                        live.insert(seg).unwrap();
                    }
                    MapOp::Delete(id) => {
                        let (removed, _) = live.remove(id).unwrap();
                        assert!(removed, "history only deletes live segments");
                    }
                }
            }
            stop.store(true, Ordering::Release);
        });
        assert_eq!(live.epoch(), ops.len() as u64);

        // Final state: the concurrently mutated index must answer every
        // workload bit-identically to the serial scratch index.
        let wb = QueryWorkbench::new(&map, 8, 0xC4A5);
        for &w in Workload::ALL.iter() {
            let a = live.with_read(|index| wb.run(w, index));
            let b = wb.run(w, scratch.as_ref());
            assert_eq!(
                a,
                b,
                "{} workload {} diverged after concurrent mutation",
                kind.label(),
                w.label()
            );
        }
    }
}
