//! Crash-recovery guard: a WAL torn at *any* byte must recover to a
//! committed prefix of the op history, and an index replayed from that
//! prefix must be indistinguishable — results **and** paper counters —
//! from an index that applied the same ops live and never crashed.
//!
//! The durability layer below this is structure-agnostic (it journals
//! `MapOp`s, not pages of any particular tree), so the property is
//! asserted for all four disk-resident structures: R*-tree, R+-tree,
//! PMR quadtree, and the uniform-grid baseline. Byte-identity of the
//! replayed index holds because segment ids are assigned by table
//! position (append order) and every structure's maintenance path is
//! deterministic.

use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind};
use lsdb_core::{
    DurableMap, FileLog, FileStorage, IndexConfig, MapOp, MemLog, MemStorage, PolygonalMap,
    QueryCtx, SpatialIndex,
};
use lsdb_geom::Rect;

/// The four structures under the durability contract.
fn four_kinds() -> [IndexKind; 4] {
    [
        IndexKind::RStar,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::Grid(64),
    ]
}

fn small_map() -> PolygonalMap {
    lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
        "crash-test",
        lsdb_tiger::CountyClass::Suburban,
        120,
        0x0C4A,
    ))
}

/// Deterministic mixed op history: insert every segment of `map` in
/// order, and after every tenth insert delete the segment five back —
/// so recovery prefixes exercise both op kinds and the append-only id
/// assignment.
fn op_history(map: &PolygonalMap) -> Vec<MapOp> {
    let mut ops = Vec::new();
    for (i, seg) in map.segments.iter().enumerate() {
        ops.push(MapOp::Insert(*seg));
        if i % 10 == 9 {
            ops.push(MapOp::Delete(lsdb_core::SegId((i - 5) as u32)));
        }
    }
    ops
}

/// Apply an op prefix directly to a fresh index — the "never crashed"
/// side of the equality.
fn apply_clean(kind: IndexKind, ops: &[MapOp]) -> Box<dyn SpatialIndex> {
    let empty = PolygonalMap::new("clean", Vec::new());
    let mut index = build_index(kind, &empty, IndexConfig::default());
    for op in ops {
        match *op {
            MapOp::Insert(seg) => {
                let id = index.seg_table_mut().push(seg);
                index.insert(id);
            }
            MapOp::Delete(id) => {
                index.remove(id);
            }
        }
    }
    index
}

/// The map of segments an op prefix has inserted (deletes keep their
/// table rows), which is what the query-stream generators need.
fn prefix_map(ops: &[MapOp]) -> PolygonalMap {
    let segs = ops
        .iter()
        .filter_map(|op| match op {
            MapOp::Insert(seg) => Some(*seg),
            MapOp::Delete(_) => None,
        })
        .collect();
    PolygonalMap::new("prefix", segs)
}

fn probe_window() -> Rect {
    Rect::new(0, 0, 8192, 8192)
}

/// Assert the recovered index answers exactly as the clean one: the
/// seven paper workloads (averaged counters and result sizes must match
/// to the bit) plus one exact result-id comparison. `wb` is `None` only
/// for the empty-prefix recoveries (the stream generators need at least
/// one segment).
fn assert_byte_identical(
    kind: IndexKind,
    cut: usize,
    recovered: &dyn SpatialIndex,
    clean: &dyn SpatialIndex,
    wb: Option<&QueryWorkbench>,
) {
    for &w in Workload::ALL.iter() {
        let Some(wb) = wb else { break };
        let a = wb.run(w, recovered);
        let b = wb.run(w, clean);
        assert_eq!(
            a,
            b,
            "{} after a cut at byte {cut}: workload {} diverged from the clean index",
            kind.label(),
            w.label()
        );
    }
    let mut ctx = QueryCtx::new();
    let ids_a = recovered.window(probe_window(), &mut ctx);
    ctx.reset();
    let ids_b = clean.window(probe_window(), &mut ctx);
    assert_eq!(
        ids_a,
        ids_b,
        "{} after a cut at byte {cut}: window result ids diverged",
        kind.label(),
    );
}

/// Tear the (in-memory) WAL at sampled byte offsets — including 0, 1,
/// and the exact end — and require every recovery to be a committed
/// prefix that queries byte-identically to clean application.
#[test]
fn torn_wal_recovers_a_prefix_identical_to_clean_application() {
    let map = small_map();
    let ops = op_history(&map);

    // Journal the whole history in batches of 11 through a shared-buffer
    // MemLog; the clone is the crash photo source.
    let log = MemLog::new();
    let photo = log.clone();
    let (mut dmap, _) =
        DurableMap::open(Box::new(MemStorage::new(128)), Box::new(log.clone())).unwrap();
    for batch in ops.chunks(11) {
        dmap.append_all(batch).unwrap();
    }
    assert_eq!(dmap.len(), ops.len());
    let full = photo.bytes();

    // ~16 evenly spread interior cuts plus the degenerate edges.
    let mut cuts = vec![0, 1, full.len() - 1, full.len()];
    let stride = (full.len() / 16).max(1);
    cuts.extend((1..16).map(|i| i * stride));
    cuts.sort_unstable();
    cuts.dedup();

    let mut prefixes_seen = std::collections::BTreeSet::new();
    for cut in cuts {
        let torn = MemLog::from_bytes(full[..cut].to_vec());
        let (rec, report) =
            DurableMap::open(Box::new(MemStorage::new(128)), Box::new(torn)).unwrap();
        let p = rec.len();
        assert!(p <= ops.len(), "recovered more ops than were ever written");
        assert_eq!(
            rec.ops(),
            &ops[..p],
            "recovery at byte {cut} is not a prefix of the op history \
             (report: {report:?})"
        );
        prefixes_seen.insert(p);

        let pm = prefix_map(&ops[..p]);
        let wb = (!pm.is_empty()).then(|| QueryWorkbench::new(&pm, 8, 0xC4A5));
        for kind in four_kinds() {
            let empty = PolygonalMap::new("recovered", Vec::new());
            let mut recovered = build_index(kind, &empty, IndexConfig::default());
            rec.replay_into(recovered.as_mut());
            let clean = apply_clean(kind, &ops[..p]);
            assert_byte_identical(kind, cut, recovered.as_ref(), clean.as_ref(), wb.as_ref());
        }
    }
    assert!(
        prefixes_seen.len() > 2,
        "cut sample degenerated: every tear recovered the same prefix \
         ({prefixes_seen:?})"
    );
    // The final cut is the whole log: nothing may be lost.
    assert_eq!(prefixes_seen.last(), Some(&ops.len()));
}

/// The same property across a checkpoint: fold half the history into the
/// base store, keep appending, then crash with a torn tail. Recovery
/// must see every checkpointed op plus the committed post-checkpoint
/// prefix.
#[test]
fn torn_wal_after_a_checkpoint_recovers_on_top_of_the_base_store() {
    let map = small_map();
    let ops = op_history(&map);
    let half = ops.len() / 2;

    let dir = std::env::temp_dir().join(format!("lsdb-crash-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pages = dir.join("ops.pages");
    let ckpt_pages = dir.join("ops.pages.ckpt");
    let wal = dir.join("ops.wal");

    let (mut dmap, _) = DurableMap::open(
        Box::new(FileStorage::create(&pages, 128).unwrap()),
        Box::new(FileLog::create(&wal).unwrap()),
    )
    .unwrap();
    for batch in ops[..half].chunks(11) {
        dmap.append_all(batch).unwrap();
    }
    dmap.checkpoint().unwrap();
    // Photograph the base store as the crashed machine's disk holds it:
    // only checkpoints touch the base, so this copy stays valid for
    // every post-checkpoint tear below.
    std::fs::copy(&pages, &ckpt_pages).unwrap();
    for batch in ops[half..].chunks(11) {
        dmap.append_all(batch).unwrap();
    }
    let full = std::fs::read(&wal).unwrap();
    drop(dmap);

    for cut in [0, 1, full.len() / 2, full.len() - 1, full.len()] {
        let torn_wal = dir.join(format!("torn-{cut}.wal"));
        let torn_pages = dir.join(format!("torn-{cut}.pages"));
        std::fs::write(&torn_wal, &full[..cut]).unwrap();
        std::fs::copy(&ckpt_pages, &torn_pages).unwrap();
        let (rec, _) = DurableMap::open(
            Box::new(FileStorage::open(&torn_pages, 128).unwrap()),
            Box::new(FileLog::open(&torn_wal).unwrap()),
        )
        .unwrap();
        let p = rec.len();
        assert!(p >= half, "checkpointed ops lost at cut {cut}");
        assert_eq!(rec.ops(), &ops[..p]);

        let wb = QueryWorkbench::new(&prefix_map(&ops[..p]), 8, 0xC4A5);
        for kind in four_kinds() {
            let empty = PolygonalMap::new("recovered", Vec::new());
            let mut recovered = build_index(kind, &empty, IndexConfig::default());
            rec.replay_into(recovered.as_mut());
            let clean = apply_clean(kind, &ops[..p]);
            assert_byte_identical(kind, cut, recovered.as_ref(), clean.as_ref(), Some(&wb));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
