//! Counter-regression guard: the paper's Table 2 metrics are part of the
//! repo's contract, so the per-query averages for every structure ×
//! workload must match the values baked below **exactly** — they were
//! recorded from the pre-kernel per-entry query path, and every later
//! query-path optimization (zero-copy node scans, batched rectangle
//! kernels, the per-context segment mini-cache, pinned B-tree descents)
//! is required to be counter-transparent.
//!
//! The full benchmark averages 1000 queries; this guard runs the same
//! deterministic query streams truncated to 50 per workload (the streams
//! are prefix-stable, so a 50-query average is itself reproducible) to
//! stay fast enough for CI. Wall time is deliberately not checked — it is
//! the one field allowed to change.

use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind, WorkloadConfig};
use lsdb_core::IndexConfig;

const QUERIES: usize = 50;

/// `(structure, workload, disk_accesses, seg_comps, bbox_comps,
/// avg_result)` — per-query averages over the first 50 queries of the
/// Charles county streams (seed 0xC4A5), recorded from the pre-kernel
/// per-entry scan loops.
const EXPECTED: [(&str, &str, f64, f64, f64, f64); 21] = [
    ("PMR", "Point1", 2.04, 3.34, 1.0, 2.0),
    ("PMR", "Point2", 2.16, 4.56, 2.0, 2.08),
    ("PMR", "Nearest (2-stage)", 3.1, 9.86, 4.58, 1.0),
    ("PMR", "Nearest (1-stage)", 3.1, 8.6, 5.08, 1.0),
    ("PMR", "Polygon (2-stage)", 18.58, 1278.26, 233.28, 228.7),
    ("PMR", "Polygon (1-stage)", 27.08, 1975.82, 358.96, 353.88),
    ("PMR", "Range", 3.98, 15.34, 10.62, 7.5),
    ("R+", "Point1", 2.56, 2.0, 101.44, 2.0),
    ("R+", "Point2", 2.74, 3.08, 200.18, 2.08),
    ("R+", "Nearest (2-stage)", 3.24, 46.78, 121.16, 1.0),
    ("R+", "Nearest (1-stage)", 3.54, 55.62, 120.98, 1.0),
    ("R+", "Polygon (2-stage)", 20.96, 987.04, 22105.52, 228.7),
    ("R+", "Polygon (1-stage)", 30.58, 1505.24, 33615.06, 353.88),
    ("R+", "Range", 4.16, 7.58, 149.88, 7.5),
    ("R*", "Point1", 2.7, 2.0, 104.98, 2.0),
    ("R*", "Point2", 2.84, 3.08, 208.54, 2.08),
    ("R*", "Nearest (2-stage)", 2.98, 49.58, 115.32, 1.0),
    ("R*", "Nearest (1-stage)", 3.04, 50.24, 119.16, 1.0),
    ("R*", "Polygon (2-stage)", 16.08, 989.84, 22835.8, 228.7),
    ("R*", "Polygon (1-stage)", 22.92, 1499.86, 34937.7, 353.88),
    ("R*", "Range", 2.98, 7.58, 121.42, 7.5),
];

#[test]
fn table2_counters_match_pre_kernel_baseline() {
    let measured = measure(|wb, w, idx| wb.run(w, idx));
    assert_against_baseline(&measured, "sequential");
}

/// The same grid executed as locality-sorted batches
/// ([`QueryWorkbench::run_batched`]): Morton-ordered execution over one
/// warm context must reproduce the pre-kernel baseline **exactly** — the
/// batch engine replays every charge per query, so warm pins and the
/// segment mini-cache are not allowed to show up in any counter.
#[test]
fn table2_counters_match_baseline_under_batched_execution() {
    let measured = measure(|wb, w, idx| wb.run_batched(w, idx));
    assert_against_baseline(&measured, "batched");
}

type Measurement = (String, &'static str, f64, f64, f64, f64);

fn measure(
    run: impl Fn(
        &QueryWorkbench,
        Workload,
        &dyn lsdb_core::SpatialIndex,
    ) -> lsdb_bench::workloads::WorkloadResult,
) -> Vec<Measurement> {
    let cfg = IndexConfig::default();
    let wcfg = WorkloadConfig::new().with_queries(QUERIES);
    let map = wcfg.county("Charles");
    let wb = QueryWorkbench::new(&map, QUERIES, 0xC4A5);

    let mut measured = Vec::new();
    for kind in IndexKind::paper_three() {
        let idx = build_index(kind, &map, cfg);
        for &w in Workload::ALL.iter() {
            let r = run(&wb, w, idx.as_ref());
            assert_eq!(r.queries, QUERIES);
            measured.push((
                kind.label(),
                w.label(),
                r.disk_accesses,
                r.seg_comps,
                r.bbox_comps,
                r.avg_result,
            ));
        }
    }
    measured
}

fn assert_against_baseline(measured: &[Measurement], mode: &str) {
    let mut failures = Vec::new();
    for &(structure, workload, disk, seg, bbox, avg) in &EXPECTED {
        let got = measured
            .iter()
            .find(|m| m.0 == structure && m.1 == workload)
            .unwrap_or_else(|| panic!("missing measurement for {structure} / {workload}"));
        for (metric, want, have) in [
            ("disk_accesses", disk, got.2),
            ("seg_comps", seg, got.3),
            ("bbox_comps", bbox, got.4),
            ("avg_result", avg, got.5),
        ] {
            if want != have {
                failures.push(format!(
                    "{structure} / {workload}: {metric} {have} != {want}"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "paper counters ({mode}) drifted from the baked baseline:\n  {}",
        failures.join("\n  ")
    );
    assert_eq!(measured.len(), EXPECTED.len(), "workload grid changed size");
}
