//! Criterion micro-benchmarks over the three structures (plus baselines).
//!
//! These are wall-clock companions to the experiment binaries (which
//! report the paper's disk-access metrics): one group per reproduced
//! artifact, on reduced maps so `cargo bench` completes quickly.
//!
//! * `build/*`          — Table 1's CPU-seconds column, reduced scale
//! * `page_buffer/*`    — Figure 6's configuration sweep, reduced grid
//! * `query/*`          — Table 2's workloads (point, nearest, window,
//!                        polygon) per structure
//! * `threshold/*`      — §7's PMR splitting-threshold ablation

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdb_bench::workloads::QueryWorkbench;
use lsdb_bench::{build_index, IndexKind};
use lsdb_core::{queries, IndexConfig, PolygonalMap, SpatialIndex};
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use lsdb_tiger::{generate, CountyClass, CountySpec};
use std::hint::black_box;

fn bench_map(class: CountyClass, target: usize, seed: u64) -> PolygonalMap {
    generate(&CountySpec::new("bench", class, target, seed))
}

fn kinds() -> Vec<IndexKind> {
    vec![
        IndexKind::RStar,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::RQuadratic,
        IndexKind::Grid(32),
    ]
}

fn bench_build(c: &mut Criterion) {
    let cfg = IndexConfig::default();
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    for (label, class) in [
        ("urban", CountyClass::Urban),
        ("rural", CountyClass::Rural { meander: 24 }),
    ] {
        let map = bench_map(class, 2500, 3);
        for kind in kinds() {
            g.bench_function(BenchmarkId::new(kind.label(), label), |b| {
                b.iter(|| black_box(build_index(kind, &map, cfg)).len())
            });
        }
    }
    g.finish();
}

fn bench_page_buffer(c: &mut Criterion) {
    let map = bench_map(CountyClass::Suburban, 2000, 5);
    let mut g = c.benchmark_group("page_buffer");
    g.sample_size(10);
    for page in [512usize, 1024, 2048] {
        for pool in [8usize, 16, 32] {
            let cfg = IndexConfig { page_size: page, pool_pages: pool };
            g.bench_function(BenchmarkId::new("pmr_build", format!("{page}B/{pool}p")), |b| {
                b.iter(|| black_box(build_index(IndexKind::Pmr, &map, cfg)).size_bytes())
            });
        }
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let cfg = IndexConfig::default();
    let map = bench_map(CountyClass::Suburban, 3000, 7);
    let wb = QueryWorkbench::new(&map, 64, 11);
    for kind in kinds() {
        let mut idx = build_index(kind, &map, cfg);
        let mut g = c.benchmark_group(format!("query/{}", kind.label()));
        g.bench_function("incident", |b| {
            let mut i = 0;
            b.iter(|| {
                let (_, p) = wb.endpoints[i % wb.endpoints.len()];
                i += 1;
                black_box(idx.find_incident(p))
            })
        });
        g.bench_function("nearest", |b| {
            let mut i = 0;
            b.iter(|| {
                let p = wb.two_stage_points[i % wb.two_stage_points.len()];
                i += 1;
                black_box(idx.nearest(p))
            })
        });
        g.bench_function("window", |b| {
            let mut i = 0;
            b.iter(|| {
                let w = wb.windows[i % wb.windows.len()];
                i += 1;
                black_box(idx.window(w))
            })
        });
        g.bench_function("polygon", |b| {
            let mut i = 0;
            b.iter(|| {
                let p = wb.two_stage_points[i % wb.two_stage_points.len()];
                i += 1;
                black_box(queries::enclosing_polygon(idx.as_mut(), p, 10_000))
            })
        });
        g.finish();
    }
}

fn bench_threshold(c: &mut Criterion) {
    let map = bench_map(CountyClass::Rural { meander: 20 }, 2500, 13);
    let mut g = c.benchmark_group("threshold");
    g.sample_size(10);
    for t in [2usize, 4, 16, 64] {
        g.bench_function(BenchmarkId::new("pmr_build", t), |b| {
            b.iter(|| {
                let pmr = PmrQuadtree::build(
                    &map,
                    PmrConfig { threshold: t, ..Default::default() },
                );
                black_box(pmr.size_bytes())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_page_buffer,
    bench_queries,
    bench_threshold
);
criterion_main!(benches);
