//! Wall-clock micro-benchmarks over the three structures (plus baselines),
//! on a plain self-contained harness (no external bench framework).
//!
//! These are timing companions to the experiment binaries (which report
//! the paper's disk-access metrics): one group per reproduced artifact, on
//! reduced maps so `cargo bench` completes quickly.
//!
//! * `build/*`          — Table 1's CPU-seconds column, reduced scale
//! * `page_buffer/*`    — Figure 6's configuration sweep, reduced grid
//! * `query/*`          — Table 2's workloads (point, nearest, window, polygon)
//!   per structure
//! * `parallel/*`       — the shared-read driver at 1/2/4 threads
//! * `threshold/*`      — §7's PMR splitting-threshold ablation

use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind};
use lsdb_core::{queries, IndexConfig, PolygonalMap, QueryCtx, SpatialIndex};
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use lsdb_tiger::{generate, CountyClass, CountySpec};
use std::hint::black_box;
use std::time::Instant;

/// Time `f` over `iters` iterations (after one warm-up call) and print a
/// criterion-style line.
fn bench<R>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> R) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s ")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else {
        (per_iter * 1e6, "µs")
    };
    println!("{group:<14} {name:<28} {value:>10.2} {unit}/iter  ({iters} iters)");
}

fn bench_map(class: CountyClass, target: usize, seed: u64) -> PolygonalMap {
    generate(&CountySpec::new("bench", class, target, seed))
}

fn kinds() -> Vec<IndexKind> {
    vec![
        IndexKind::RStar,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::RQuadratic,
        IndexKind::Grid(32),
    ]
}

fn bench_build() {
    let cfg = IndexConfig::default();
    for (label, class) in [
        ("urban", CountyClass::Urban),
        ("rural", CountyClass::Rural { meander: 24 }),
    ] {
        let map = bench_map(class, 2500, 3);
        for kind in kinds() {
            bench("build", &format!("{}/{label}", kind.label()), 3, || {
                build_index(kind, &map, cfg).len()
            });
        }
    }
}

fn bench_page_buffer() {
    let map = bench_map(CountyClass::Suburban, 2000, 5);
    for page in [512usize, 1024, 2048] {
        for pool in [8usize, 16, 32] {
            let cfg = IndexConfig {
                page_size: page,
                pool_pages: pool,
                ..Default::default()
            };
            bench(
                "page_buffer",
                &format!("pmr_build/{page}B/{pool}p"),
                3,
                || build_index(IndexKind::Pmr, &map, cfg).size_bytes(),
            );
        }
    }
}

fn bench_queries() {
    let cfg = IndexConfig::default();
    let map = bench_map(CountyClass::Suburban, 3000, 7);
    let wb = QueryWorkbench::new(&map, 64, 11);
    for kind in kinds() {
        let idx = build_index(kind, &map, cfg);
        let group = format!("query/{}", kind.label());
        let mut ctx = QueryCtx::new();
        let mut i = 0usize;
        bench(&group, "incident", 2000, || {
            let (_, p) = wb.endpoints[i % wb.endpoints.len()];
            i += 1;
            ctx.reset();
            idx.find_incident(p, &mut ctx)
        });
        let mut i = 0usize;
        bench(&group, "nearest", 2000, || {
            let p = wb.two_stage_points[i % wb.two_stage_points.len()];
            i += 1;
            ctx.reset();
            idx.nearest(p, &mut ctx)
        });
        let mut i = 0usize;
        bench(&group, "window", 2000, || {
            let w = wb.windows[i % wb.windows.len()];
            i += 1;
            ctx.reset();
            idx.window(w, &mut ctx)
        });
        let mut i = 0usize;
        bench(&group, "polygon", 200, || {
            let p = wb.two_stage_points[i % wb.two_stage_points.len()];
            i += 1;
            ctx.reset();
            queries::enclosing_polygon(idx.as_ref(), p, 10_000, &mut ctx)
        });
    }
}

fn bench_parallel() {
    // The shared-read driver on Table 2's heaviest workloads: the same
    // counters come out at every thread count, only the wall time moves.
    let cfg = IndexConfig::default();
    let map = bench_map(CountyClass::Rural { meander: 24 }, 4000, 9);
    let wb = QueryWorkbench::new(&map, 256, 13);
    for kind in IndexKind::paper_three() {
        let idx = build_index(kind, &map, cfg);
        for threads in [1usize, 2, 4] {
            bench(
                "parallel",
                &format!("{}/polygon2/{threads}t", kind.label()),
                3,
                || wb.run_threaded(Workload::PolygonTwoStage, idx.as_ref(), threads),
            );
        }
    }
}

fn bench_threshold() {
    let map = bench_map(CountyClass::Rural { meander: 20 }, 2500, 13);
    for t in [2usize, 4, 16, 64] {
        bench("threshold", &format!("pmr_build/t={t}"), 3, || {
            PmrQuadtree::build(
                &map,
                PmrConfig {
                    threshold: t,
                    ..Default::default()
                },
            )
            .size_bytes()
        });
    }
}

fn main() {
    // `cargo bench` passes a `--bench` flag to harness = false targets;
    // the first non-flag argument (if any) filters the groups.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    let run = |name: &str| filter.is_empty() || name.contains(&filter);
    if run("build") {
        bench_build();
    }
    if run("page_buffer") {
        bench_page_buffer();
    }
    if run("query") {
        bench_queries();
    }
    if run("parallel") {
        bench_parallel();
    }
    if run("threshold") {
        bench_threshold();
    }
}
