//! Minimal hand-rolled JSON emission for the bench binaries (`--json`).
//!
//! The workspace deliberately has no serialization dependency, and the
//! trajectory files only ever hold flat records, so a small writer is all
//! that is needed. The output is deterministic (fixed key order, `\n`
//! separators) so two runs can be compared with a plain text diff —
//! that is how the counter-parity acceptance check works: dump
//! `BENCH_queries.json` before and after a query-path change and diff
//! everything except the wall-time fields.

use crate::workloads::WorkloadResult;
use std::fmt::Write as _;
use std::path::Path;

/// One structure × workload measurement row of `BENCH_queries.json`.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Structure label in the paper's reporting order ("PMR", "R+", "R*").
    pub structure: String,
    /// Workload label from [`crate::workloads::Workload::label`].
    pub workload: &'static str,
    /// Per-query averages for the batch.
    pub result: WorkloadResult,
    /// Wall time for the whole batch, milliseconds — minimum over the
    /// emitter's repetition count (table2 uses min-of-3) to strip
    /// scheduler noise. Excluded from parity diffs — it is the only
    /// non-deterministic field.
    pub wall_ms: f64,
}

/// Render the `BENCH_queries.json` document: run parameters plus one
/// record per structure × workload.
pub fn render_queries(
    map_name: &str,
    segments: usize,
    queries: usize,
    threads: usize,
    records: &[QueryRecord],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"table2\",");
    let _ = writeln!(out, "  \"map\": {},", quote(map_name));
    let _ = writeln!(out, "  \"segments\": {segments},");
    let _ = writeln!(out, "  \"queries_per_workload\": {queries},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"structure\": {}, \"workload\": {}, \"queries\": {}, \
             \"disk_accesses\": {}, \"seg_comps\": {}, \"bbox_comps\": {}, \
             \"avg_result\": {}, \"wall_ms\": {}}}",
            quote(&r.structure),
            quote(r.workload),
            r.result.queries,
            num(r.result.disk_accesses),
            num(r.result.seg_comps),
            num(r.result.bbox_comps),
            num(r.result.avg_result),
            num(round_ms(r.wall_ms)),
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write a rendered document, creating parent directories as needed.
pub fn write_file(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

/// JSON string literal with the escapes our labels can actually contain.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: Rust's `Display` for finite `f64` is valid JSON; guard the
/// non-finite cases (which JSON cannot represent) with `null`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Wall times are measured to nanoseconds but reported in milliseconds;
/// rounding to 3 decimals (microsecond resolution) keeps the emitted
/// document free of 17-digit float noise without losing anything a
/// wall-clock comparison could use.
fn round_ms(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_and_numbers() {
        assert_eq!(quote("R*"), "\"R*\"");
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(num(3.5), "3.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn wall_times_round_to_microseconds() {
        assert_eq!(round_ms(630.3666666667), 630.367);
        assert_eq!(round_ms(0.00049), 0.0);
        assert_eq!(round_ms(1.0), 1.0);
        let rec = QueryRecord {
            structure: "R*".into(),
            workload: "Range",
            result: WorkloadResult {
                queries: 1,
                disk_accesses: 1.0,
                seg_comps: 1.0,
                bbox_comps: 1.0,
                avg_result: 1.0,
            },
            wall_ms: 12.345678901,
        };
        let doc = render_queries("Charles", 1, 1, 1, &[rec]);
        assert!(doc.contains("\"wall_ms\": 12.346"), "{doc}");
    }

    #[test]
    fn renders_well_formed_document() {
        let rec = QueryRecord {
            structure: "PMR".into(),
            workload: "Point1",
            result: WorkloadResult {
                queries: 10,
                disk_accesses: 4.25,
                seg_comps: 7.0,
                bbox_comps: 3.0,
                avg_result: 2.5,
            },
            wall_ms: 1.5,
        };
        let doc = render_queries("Charles", 1234, 10, 1, &[rec.clone(), rec]);
        // Structural smoke checks: balanced braces/brackets, expected keys,
        // one comma between the two records.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"map\": \"Charles\""));
        assert!(doc.contains("\"disk_accesses\": 4.25"));
        assert_eq!(doc.matches("}},").count() + doc.matches("},\n").count(), 1);
    }
}
