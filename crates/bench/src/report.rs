//! Plain-text table rendering for the experiment binaries.

/// Render an aligned text table. `rows` include the header as row 0.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap();
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Right-align numeric-looking cells, left-align the rest.
            let numeric = cell
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '.');
            if numeric && ri > 0 {
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            } else {
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// A min/avg/max summary over per-map normalized values, as plotted in the
/// paper's Figures 7-9 ("the normalized range highlights the average
/// normalized value for the 6 maps making it easier to see variability").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormalizedRange {
    pub min: f64,
    pub avg: f64,
    pub max: f64,
}

impl NormalizedRange {
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty());
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        NormalizedRange { min, avg, max }
    }

    pub fn format(&self) -> String {
        format!("{:.2} [{:.2}..{:.2}]", self.avg, self.min, self.max)
    }
}

/// Format a float with sensible precision for table cells.
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["name".into(), "value".into()],
            vec!["alpha".into(), "1.5".into()],
            vec!["b".into(), "100".into()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("-----"));
        // Numeric cells right-aligned within the column.
        assert!(lines[2].contains("  1.5"));
    }

    #[test]
    fn normalized_range() {
        let r = NormalizedRange::of(&[1.0, 2.0, 3.0]);
        assert_eq!(r.min, 1.0);
        assert_eq!(r.max, 3.0);
        assert!((r.avg - 2.0).abs() < 1e-12);
        assert_eq!(r.format(), "2.00 [1.00..3.00]");
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.37), "42.4");
        assert_eq!(fmt(1.234), "1.23");
    }
}
