//! The paper's seven query workloads with per-query metric accumulation.
//!
//! "For each query type and map, 1000 tests were performed" — queries 3
//! (nearest line) and 4 (enclosing polygon) run twice, once with 1-stage
//! (uniform) and once with 2-stage (block-correlated) random points, giving
//! seven workloads; query 5 uses windows covering 0.01% of the map area.

use lsdb_core::pointgen::{EndpointGen, TwoStageGen, UniformGen, WindowGen};
use lsdb_core::{queries, PolygonalMap, QueryStats, SpatialIndex};
use lsdb_geom::Rect;
use lsdb_pmr::{PmrConfig, PmrQuadtree};

/// The seven workloads of the paper's evaluation, in Table 2's order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    Point1,
    Point2,
    NearestTwoStage,
    NearestOneStage,
    PolygonTwoStage,
    PolygonOneStage,
    Range,
}

impl Workload {
    pub const ALL: [Workload; 7] = [
        Workload::Point1,
        Workload::Point2,
        Workload::NearestTwoStage,
        Workload::NearestOneStage,
        Workload::PolygonTwoStage,
        Workload::PolygonOneStage,
        Workload::Range,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Workload::Point1 => "Point1",
            Workload::Point2 => "Point2",
            Workload::NearestTwoStage => "Nearest (2-stage)",
            Workload::NearestOneStage => "Nearest (1-stage)",
            Workload::PolygonTwoStage => "Polygon (2-stage)",
            Workload::PolygonOneStage => "Polygon (1-stage)",
            Workload::Range => "Range",
        }
    }
}

/// Average per-query metrics for one workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadResult {
    pub queries: usize,
    pub disk_accesses: f64,
    pub seg_comps: f64,
    pub bbox_comps: f64,
    /// Auxiliary: average result size (incident counts, window hits, or
    /// polygon boundary length).
    pub avg_result: f64,
}

/// Everything needed to drive the seven workloads reproducibly against any
/// number of structures: the shared query streams.
pub struct QueryWorkbench {
    /// (segment, endpoint) pairs for Point1/Point2.
    pub endpoints: Vec<(lsdb_core::SegId, lsdb_geom::Point)>,
    /// 1-stage (uniform) points.
    pub uniform_points: Vec<lsdb_geom::Point>,
    /// 2-stage (block-correlated) points.
    pub two_stage_points: Vec<lsdb_geom::Point>,
    /// Range-query windows (0.01% of the area).
    pub windows: Vec<Rect>,
    /// Step cap for polygon walks (outer faces can be long).
    pub max_polygon_steps: usize,
}

impl QueryWorkbench {
    /// Build the query streams for `map`. The 2-stage stream follows the
    /// paper: PMR-quadtree leaf blocks chosen uniformly *by count*, then a
    /// uniform point inside the block. A throwaway PMR quadtree over the
    /// map supplies the block list regardless of the structure under test.
    pub fn new(map: &PolygonalMap, n: usize, seed: u64) -> Self {
        let mut pmr = PmrQuadtree::build(map, PmrConfig::default());
        let blocks: Vec<Rect> = pmr.leaf_blocks().iter().map(|b| b.rect()).collect();
        let mut endpoint_gen = EndpointGen::new(map, seed ^ 0x1111);
        let mut uni = UniformGen::new(seed ^ 0x2222);
        let mut two = TwoStageGen::new(blocks, seed ^ 0x3333);
        let mut win = WindowGen::new(0.0001, seed ^ 0x4444);
        QueryWorkbench {
            endpoints: (0..n).map(|_| endpoint_gen.next_endpoint()).collect(),
            uniform_points: (0..n).map(|_| uni.next_point()).collect(),
            two_stage_points: (0..n).map(|_| two.next_point()).collect(),
            windows: (0..n).map(|_| win.next_window()).collect(),
            max_polygon_steps: (map.len() * 2).clamp(1000, 6000),
        }
    }

    /// Run one workload against `index`, returning averaged metrics.
    /// The buffer pool stays warm across the queries of a workload, as in
    /// the paper's batched runs.
    pub fn run(&self, workload: Workload, index: &mut dyn SpatialIndex) -> WorkloadResult {
        index.reset_stats();
        let mut result_size = 0usize;
        let n = match workload {
            Workload::Point1 => {
                for &(_, p) in &self.endpoints {
                    result_size += index.find_incident(p).len();
                }
                self.endpoints.len()
            }
            Workload::Point2 => {
                for &(id, p) in &self.endpoints {
                    result_size += queries::second_endpoint(index, id, p).len();
                }
                self.endpoints.len()
            }
            Workload::NearestTwoStage => {
                for &p in &self.two_stage_points {
                    result_size += index.nearest(p).is_some() as usize;
                }
                self.two_stage_points.len()
            }
            Workload::NearestOneStage => {
                for &p in &self.uniform_points {
                    result_size += index.nearest(p).is_some() as usize;
                }
                self.uniform_points.len()
            }
            Workload::PolygonTwoStage => {
                for &p in &self.two_stage_points {
                    if let Some(w) = queries::enclosing_polygon(index, p, self.max_polygon_steps) {
                        result_size += w.len();
                    }
                }
                self.two_stage_points.len()
            }
            Workload::PolygonOneStage => {
                for &p in &self.uniform_points {
                    if let Some(w) = queries::enclosing_polygon(index, p, self.max_polygon_steps) {
                        result_size += w.len();
                    }
                }
                self.uniform_points.len()
            }
            Workload::Range => {
                for &w in &self.windows {
                    result_size += index.window(w).len();
                }
                self.windows.len()
            }
        };
        let s: QueryStats = index.stats();
        let nf = n as f64;
        WorkloadResult {
            queries: n,
            disk_accesses: s.disk.total() as f64 / nf,
            seg_comps: s.seg_comps as f64 / nf,
            bbox_comps: s.bbox_comps as f64 / nf,
            avg_result: result_size as f64 / nf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::IndexConfig;

    fn tiny_map() -> PolygonalMap {
        lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
            "wb-test",
            lsdb_tiger::CountyClass::Suburban,
            800,
            17,
        ))
    }

    #[test]
    fn workbench_is_deterministic() {
        let map = tiny_map();
        let a = QueryWorkbench::new(&map, 50, 1);
        let b = QueryWorkbench::new(&map, 50, 1);
        assert_eq!(a.endpoints, b.endpoints);
        assert_eq!(a.uniform_points, b.uniform_points);
        assert_eq!(a.two_stage_points, b.two_stage_points);
        assert_eq!(a.windows, b.windows);
    }

    #[test]
    fn all_workloads_run_on_all_structures() {
        let map = tiny_map();
        let wb = QueryWorkbench::new(&map, 20, 2);
        for kind in crate::IndexKind::paper_three() {
            let mut idx = crate::build_index(kind, &map, IndexConfig::default());
            for w in Workload::ALL {
                let r = wb.run(w, idx.as_mut());
                assert_eq!(r.queries, 20, "{kind:?} {w:?}");
                assert!(r.seg_comps >= 0.0);
            }
        }
    }

    #[test]
    fn identical_streams_give_identical_answers_across_structures() {
        // The three structures must agree on every query result (the
        // metrics differ; the answers must not).
        let map = tiny_map();
        let wb = QueryWorkbench::new(&map, 30, 3);
        let cfg = IndexConfig::default();
        let mut indexes: Vec<_> = crate::IndexKind::paper_three()
            .iter()
            .map(|&k| crate::build_index(k, &map, cfg))
            .collect();
        for &(_, p) in &wb.endpoints {
            let mut answers: Vec<Vec<lsdb_core::SegId>> = indexes
                .iter_mut()
                .map(|i| lsdb_core::brute::sorted(i.find_incident(p)))
                .collect();
            answers.dedup();
            assert_eq!(answers.len(), 1, "incident answers diverge at {p:?}");
        }
        for &w in &wb.windows {
            let mut answers: Vec<Vec<lsdb_core::SegId>> = indexes
                .iter_mut()
                .map(|i| lsdb_core::brute::sorted(i.window(w)))
                .collect();
            answers.dedup();
            assert_eq!(answers.len(), 1, "window answers diverge at {w:?}");
        }
        for &p in wb.two_stage_points.iter().chain(&wb.uniform_points) {
            let dists: Vec<_> = indexes
                .iter_mut()
                .map(|i| {
                    let id = i.nearest(p).unwrap();
                    map.segments[id.index()].dist2_point(p)
                })
                .collect();
            assert!(dists.windows(2).all(|d| d[0] == d[1]), "NN distance diverges at {p:?}");
        }
    }
}
