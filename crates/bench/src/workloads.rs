//! The paper's seven query workloads with per-query metric accumulation.
//!
//! "For each query type and map, 1000 tests were performed" — queries 3
//! (nearest line) and 4 (enclosing polygon) run twice, once with 1-stage
//! (uniform) and once with 2-stage (block-correlated) random points, giving
//! seven workloads; query 5 uses windows covering 0.01% of the map area.
//!
//! Queries take `&dyn SpatialIndex` plus a per-query [`QueryCtx`], so a
//! batch can be fanned across threads ([`QueryWorkbench::run_threaded`]):
//! each worker owns one context, every counter is charged there, and the
//! batch totals are a plain sum of per-query values — identical on one
//! thread or sixteen.

use lsdb_core::pointgen::{EndpointGen, TwoStageGen, UniformGen, WindowGen};
use lsdb_core::{execute_batch, queries, BatchRequest};
use lsdb_core::{PolygonalMap, QueryCtx, QueryStats, SpatialIndex};
use lsdb_geom::Rect;
use lsdb_pmr::{PmrConfig, PmrQuadtree};

/// The seven workloads of the paper's evaluation, in Table 2's order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    Point1,
    Point2,
    NearestTwoStage,
    NearestOneStage,
    PolygonTwoStage,
    PolygonOneStage,
    Range,
}

impl Workload {
    pub const ALL: [Workload; 7] = [
        Workload::Point1,
        Workload::Point2,
        Workload::NearestTwoStage,
        Workload::NearestOneStage,
        Workload::PolygonTwoStage,
        Workload::PolygonOneStage,
        Workload::Range,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Workload::Point1 => "Point1",
            Workload::Point2 => "Point2",
            Workload::NearestTwoStage => "Nearest (2-stage)",
            Workload::NearestOneStage => "Nearest (1-stage)",
            Workload::PolygonTwoStage => "Polygon (2-stage)",
            Workload::PolygonOneStage => "Polygon (1-stage)",
            Workload::Range => "Range",
        }
    }

    /// Label for the locality-sorted batched execution of this workload
    /// (the `BENCH_queries.json` row name).
    pub fn batched_label(self) -> &'static str {
        match self {
            Workload::Point1 => "Point1 (batched)",
            Workload::Point2 => "Point2 (batched)",
            Workload::NearestTwoStage => "Nearest (2-stage, batched)",
            Workload::NearestOneStage => "Nearest (1-stage, batched)",
            Workload::PolygonTwoStage => "Polygon (2-stage, batched)",
            Workload::PolygonOneStage => "Polygon (1-stage, batched)",
            Workload::Range => "Range (batched)",
        }
    }
}

/// Average per-query metrics for one workload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadResult {
    pub queries: usize,
    pub disk_accesses: f64,
    pub seg_comps: f64,
    pub bbox_comps: f64,
    /// Auxiliary: average result size (incident counts, window hits, or
    /// polygon boundary length).
    pub avg_result: f64,
}

/// Run every item of a query stream, one fresh [`QueryCtx`] per query,
/// summing result sizes and per-query stats. With `threads > 1` the stream
/// is split into contiguous chunks, one scoped worker per chunk; partial
/// sums are merged in chunk order, so the totals (and therefore the
/// averages) are exactly the sequential ones.
fn drive<T: Sync>(
    items: &[T],
    threads: usize,
    run_one: &(dyn Fn(&T, &mut QueryCtx) -> usize + Sync),
) -> (usize, QueryStats) {
    let run_chunk = |chunk: &[T]| {
        let mut ctx = QueryCtx::new();
        let mut stats = QueryStats::default();
        let mut size = 0usize;
        for item in chunk {
            ctx.reset();
            size += run_one(item, &mut ctx);
            stats.add(ctx.stats());
        }
        (size, stats)
    };
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return run_chunk(items);
    }
    let chunk_len = items.len().div_ceil(threads);
    let run_chunk = &run_chunk;
    let partials: Vec<(usize, QueryStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || run_chunk(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload worker"))
            .collect()
    });
    let mut size = 0usize;
    let mut stats = QueryStats::default();
    for (s, st) in partials {
        size += s;
        stats.add(st);
    }
    (size, stats)
}

/// Everything needed to drive the seven workloads reproducibly against any
/// number of structures: the shared query streams.
pub struct QueryWorkbench {
    /// (segment, endpoint) pairs for Point1/Point2.
    pub endpoints: Vec<(lsdb_core::SegId, lsdb_geom::Point)>,
    /// 1-stage (uniform) points.
    pub uniform_points: Vec<lsdb_geom::Point>,
    /// 2-stage (block-correlated) points.
    pub two_stage_points: Vec<lsdb_geom::Point>,
    /// Range-query windows (0.01% of the area).
    pub windows: Vec<Rect>,
    /// Step cap for polygon walks (outer faces can be long).
    pub max_polygon_steps: usize,
}

impl QueryWorkbench {
    /// Build the query streams for `map`. The 2-stage stream follows the
    /// paper: PMR-quadtree leaf blocks chosen uniformly *by count*, then a
    /// uniform point inside the block. A throwaway PMR quadtree over the
    /// map supplies the block list regardless of the structure under test.
    pub fn new(map: &PolygonalMap, n: usize, seed: u64) -> Self {
        let mut pmr = PmrQuadtree::build(map, PmrConfig::default());
        let blocks: Vec<Rect> = pmr.leaf_blocks().iter().map(|b| b.rect()).collect();
        let mut endpoint_gen = EndpointGen::new(map, seed ^ 0x1111);
        let mut uni = UniformGen::new(seed ^ 0x2222);
        let mut two = TwoStageGen::new(blocks, seed ^ 0x3333);
        let mut win = WindowGen::new(0.0001, seed ^ 0x4444);
        QueryWorkbench {
            endpoints: (0..n).map(|_| endpoint_gen.next_endpoint()).collect(),
            uniform_points: (0..n).map(|_| uni.next_point()).collect(),
            two_stage_points: (0..n).map(|_| two.next_point()).collect(),
            windows: (0..n).map(|_| win.next_window()).collect(),
            max_polygon_steps: (map.len() * 2).clamp(1000, 6000),
        }
    }

    /// Run one workload against a shared `index`, returning averaged
    /// metrics. Equivalent to [`QueryWorkbench::run_threaded`] with one
    /// thread.
    pub fn run(&self, workload: Workload, index: &dyn SpatialIndex) -> WorkloadResult {
        self.run_threaded(workload, index, 1)
    }

    /// Run one workload against a shared `index`, fanning the query stream
    /// over `threads` scoped workers. Answers and counters are exactly
    /// those of the sequential run: the read path never alters buffer-pool
    /// residency, so every per-query metric is a pure function of the
    /// query and the structure, not of the interleaving.
    pub fn run_threaded(
        &self,
        workload: Workload,
        index: &dyn SpatialIndex,
        threads: usize,
    ) -> WorkloadResult {
        let steps = self.max_polygon_steps;
        let (result_size, stats) = match workload {
            Workload::Point1 => drive(&self.endpoints, threads, &|&(_, p), ctx| {
                index.find_incident(p, ctx).len()
            }),
            Workload::Point2 => drive(&self.endpoints, threads, &|&(id, p), ctx| {
                queries::second_endpoint(index, id, p, ctx).len()
            }),
            Workload::NearestTwoStage => drive(&self.two_stage_points, threads, &|&p, ctx| {
                index.nearest(p, ctx).is_some() as usize
            }),
            Workload::NearestOneStage => drive(&self.uniform_points, threads, &|&p, ctx| {
                index.nearest(p, ctx).is_some() as usize
            }),
            Workload::PolygonTwoStage => drive(&self.two_stage_points, threads, &|&p, ctx| {
                queries::enclosing_polygon(index, p, steps, ctx).map_or(0, |w| w.len())
            }),
            Workload::PolygonOneStage => drive(&self.uniform_points, threads, &|&p, ctx| {
                queries::enclosing_polygon(index, p, steps, ctx).map_or(0, |w| w.len())
            }),
            Workload::Range => drive(&self.windows, threads, &|&w, ctx| {
                index.window(w, ctx).len()
            }),
        };
        let n = match workload {
            Workload::Point1 | Workload::Point2 => self.endpoints.len(),
            Workload::NearestTwoStage | Workload::PolygonTwoStage => self.two_stage_points.len(),
            Workload::NearestOneStage | Workload::PolygonOneStage => self.uniform_points.len(),
            Workload::Range => self.windows.len(),
        };
        let nf = n as f64;
        WorkloadResult {
            queries: n,
            disk_accesses: stats.disk.total() as f64 / nf,
            seg_comps: stats.seg_comps as f64 / nf,
            bbox_comps: stats.bbox_comps as f64 / nf,
            avg_result: result_size as f64 / nf,
        }
    }

    /// The workload's whole query stream as one homogeneous
    /// [`BatchRequest`] — what a batching client would put on the wire.
    pub fn batch(&self, workload: Workload) -> BatchRequest {
        let steps = self.max_polygon_steps as u32;
        match workload {
            Workload::Point1 => {
                BatchRequest::Incident(self.endpoints.iter().map(|&(_, p)| p).collect())
            }
            Workload::Point2 => BatchRequest::Second(self.endpoints.clone()),
            Workload::NearestTwoStage => BatchRequest::Nearest(self.two_stage_points.clone()),
            Workload::NearestOneStage => BatchRequest::Nearest(self.uniform_points.clone()),
            Workload::PolygonTwoStage => BatchRequest::Polygon {
                points: self.two_stage_points.clone(),
                max_steps: steps,
            },
            Workload::PolygonOneStage => BatchRequest::Polygon {
                points: self.uniform_points.clone(),
                max_steps: steps,
            },
            Workload::Range => BatchRequest::Window(self.windows.clone()),
        }
    }

    /// Run one workload as a single locality-sorted batch
    /// ([`execute_batch`]): queries execute in Morton order of query
    /// point over one warm context, so pinned pages and the segment
    /// mini-cache carry across neighbors. The averages are exactly those
    /// of [`QueryWorkbench::run`] — batching is counter-transparent by
    /// construction (and by the counter guard) — only wall time drops.
    pub fn run_batched(&self, workload: Workload, index: &dyn SpatialIndex) -> WorkloadResult {
        let req = self.batch(workload);
        let mut ctx = QueryCtx::new();
        let items = execute_batch(index, &req, &mut ctx);
        let mut stats = QueryStats::default();
        let mut result_size = 0usize;
        for item in &items {
            stats.add(item.stats);
            result_size += item.answer.result_size();
        }
        let n = items.len();
        let nf = n as f64;
        WorkloadResult {
            queries: n,
            disk_accesses: stats.disk.total() as f64 / nf,
            seg_comps: stats.seg_comps as f64 / nf,
            bbox_comps: stats.bbox_comps as f64 / nf,
            avg_result: result_size as f64 / nf,
        }
    }

    /// Mixed live workload: the range stream with one `INSERT` folded in
    /// after every ninth query (≈ 90% reads / 10% writes of the total op
    /// count). Queries run through the live index's read path, inserts
    /// through its durable write path, exactly as the server interleaves
    /// them. The averages cover the **queries only** — mutations are not
    /// spatial queries and are excluded from the paper counters, matching
    /// the server's `STATS` semantics.
    pub fn run_mixed_range_insert(
        &self,
        live: &lsdb_core::LiveIndex,
        inserts: &[lsdb_geom::Segment],
    ) -> WorkloadResult {
        let mut ctx = QueryCtx::new();
        let mut stats = QueryStats::default();
        let mut result_size = 0usize;
        let mut next_insert = inserts.iter().cycle();
        for (i, &w) in self.windows.iter().enumerate() {
            ctx.reset();
            result_size += live.with_read(|index| index.window(w, &mut ctx)).len();
            stats.add(ctx.stats());
            if i % 9 == 8 {
                live.insert(*next_insert.next().expect("non-empty insert stream"))
                    .expect("volatile insert cannot fail");
            }
        }
        let nf = self.windows.len() as f64;
        WorkloadResult {
            queries: self.windows.len(),
            disk_accesses: stats.disk.total() as f64 / nf,
            seg_comps: stats.seg_comps as f64 / nf,
            bbox_comps: stats.bbox_comps as f64 / nf,
            avg_result: result_size as f64 / nf,
        }
    }
}

/// A deterministic stream of `n` *fresh* segments for live-insert
/// workloads: the map's own segments displaced by a small per-index
/// jitter (clamped to the world), so inserts land in the same localities
/// the map populates without duplicating any geometry exactly.
pub fn insert_stream(map: &PolygonalMap, n: usize) -> Vec<lsdb_geom::Segment> {
    use lsdb_geom::{Point, Segment, WORLD_SIZE};
    let clamp = |v: i32| v.clamp(0, WORLD_SIZE - 1);
    (0..n)
        .map(|i| {
            let s = &map.segments[i % map.len()];
            let dx = (i % 13) as i32 - 6;
            let dy = (i % 11) as i32 - 5;
            Segment {
                a: Point::new(clamp(s.a.x + dx), clamp(s.a.y + dy)),
                b: Point::new(clamp(s.b.x + dx), clamp(s.b.y + dy)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::IndexConfig;

    fn tiny_map() -> PolygonalMap {
        lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
            "wb-test",
            lsdb_tiger::CountyClass::Suburban,
            800,
            17,
        ))
    }

    #[test]
    fn workbench_is_deterministic() {
        let map = tiny_map();
        let a = QueryWorkbench::new(&map, 50, 1);
        let b = QueryWorkbench::new(&map, 50, 1);
        assert_eq!(a.endpoints, b.endpoints);
        assert_eq!(a.uniform_points, b.uniform_points);
        assert_eq!(a.two_stage_points, b.two_stage_points);
        assert_eq!(a.windows, b.windows);
    }

    #[test]
    fn all_workloads_run_on_all_structures() {
        let map = tiny_map();
        let wb = QueryWorkbench::new(&map, 20, 2);
        for kind in crate::IndexKind::paper_three() {
            let idx = crate::build_index(kind, &map, IndexConfig::default());
            for w in Workload::ALL {
                let r = wb.run(w, idx.as_ref());
                assert_eq!(r.queries, 20, "{kind:?} {w:?}");
                assert!(r.seg_comps >= 0.0);
            }
        }
    }

    #[test]
    fn threaded_runs_reproduce_sequential_averages() {
        let map = tiny_map();
        let wb = QueryWorkbench::new(&map, 30, 9);
        for kind in crate::IndexKind::paper_three() {
            let idx = crate::build_index(kind, &map, IndexConfig::default());
            for w in Workload::ALL {
                let seq = wb.run(w, idx.as_ref());
                for threads in [2usize, 3, 8] {
                    let par = wb.run_threaded(w, idx.as_ref(), threads);
                    assert_eq!(seq, par, "{kind:?} {w:?} x{threads}");
                }
            }
        }
    }

    #[test]
    fn batched_runs_reproduce_sequential_averages() {
        // Morton-sorted batch execution must be invisible in every
        // reported metric, for every workload, on every structure kind —
        // including the grid, whose cells alias pages very differently
        // from the trees.
        let map = tiny_map();
        let wb = QueryWorkbench::new(&map, 25, 11);
        let kinds = [
            crate::IndexKind::Pmr,
            crate::IndexKind::RPlus,
            crate::IndexKind::RStar,
            crate::IndexKind::Grid(16),
        ];
        for kind in kinds {
            let idx = crate::build_index(kind, &map, IndexConfig::default());
            for w in Workload::ALL {
                let seq = wb.run(w, idx.as_ref());
                let bat = wb.run_batched(w, idx.as_ref());
                assert_eq!(seq, bat, "{kind:?} {w:?}");
                assert_eq!(wb.batch(w).len(), seq.queries, "{kind:?} {w:?}");
            }
        }
    }

    #[test]
    fn oversized_thread_counts_are_clamped() {
        let map = tiny_map();
        let wb = QueryWorkbench::new(&map, 3, 4);
        let idx = crate::build_index(crate::IndexKind::Pmr, &map, IndexConfig::default());
        let seq = wb.run(Workload::Point1, idx.as_ref());
        // More threads than queries (and thread count 0) both degrade
        // gracefully.
        assert_eq!(seq, wb.run_threaded(Workload::Point1, idx.as_ref(), 64));
        assert_eq!(seq, wb.run_threaded(Workload::Point1, idx.as_ref(), 0));
    }

    #[test]
    fn identical_streams_give_identical_answers_across_structures() {
        // The three structures must agree on every query result (the
        // metrics differ; the answers must not).
        let map = tiny_map();
        let wb = QueryWorkbench::new(&map, 30, 3);
        let cfg = IndexConfig::default();
        let indexes: Vec<_> = crate::IndexKind::paper_three()
            .iter()
            .map(|&k| crate::build_index(k, &map, cfg))
            .collect();
        // A context's page pins are only meaningful against one index's
        // pools, so each (query, index) pair gets a fresh one — exactly
        // what `drive` does per query.
        for &(_, p) in &wb.endpoints {
            let mut answers: Vec<Vec<lsdb_core::SegId>> = indexes
                .iter()
                .map(|i| lsdb_core::brute::sorted(i.find_incident(p, &mut QueryCtx::new())))
                .collect();
            answers.dedup();
            assert_eq!(answers.len(), 1, "incident answers diverge at {p:?}");
        }
        for &w in &wb.windows {
            let mut answers: Vec<Vec<lsdb_core::SegId>> = indexes
                .iter()
                .map(|i| lsdb_core::brute::sorted(i.window(w, &mut QueryCtx::new())))
                .collect();
            answers.dedup();
            assert_eq!(answers.len(), 1, "window answers diverge at {w:?}");
        }
        for &p in wb.two_stage_points.iter().chain(&wb.uniform_points) {
            let dists: Vec<_> = indexes
                .iter()
                .map(|i| {
                    let id = i.nearest(p, &mut QueryCtx::new()).unwrap();
                    map.segments[id.index()].dist2_point(p)
                })
                .collect();
            assert!(
                dists.windows(2).all(|d| d[0] == d[1]),
                "NN distance diverges at {p:?}"
            );
        }
    }
}
