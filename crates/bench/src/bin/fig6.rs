//! Reproduce **Figure 6** — build disk accesses as a function of page size
//! and buffer-pool size, for the PMR quadtree and the R+-tree.
//!
//! The paper's shape: accesses decrease with both page size and pool size,
//! and "for identical page and buffer pool configurations, the number of
//! disk accesses for the PMR quadtree is smaller than for the R+-tree"
//! (8-byte vs 20-byte tuples).
//!
//! Usage: `cargo run --release -p lsdb-bench --bin fig6`

use lsdb_bench::report::render_table;
use lsdb_bench::{measure_build, IndexKind, WorkloadConfig};
use lsdb_core::IndexConfig;

fn main() {
    let map = WorkloadConfig::from_args().county("Anne Arundel");
    println!(
        "Figure 6: build disk accesses by page size x buffer pool ({}: {} segments)\n",
        map.name,
        map.len()
    );
    let page_sizes = [512usize, 1024, 2048, 4096];
    let pool_sizes = [8usize, 16, 32, 64];
    for kind in [IndexKind::Pmr, IndexKind::RPlus] {
        println!("{}:", kind.label());
        let mut rows = vec![{
            let mut h = vec!["page \\ pool".to_string()];
            h.extend(pool_sizes.iter().map(|b| format!("{b} pages")));
            h
        }];
        for &ps in &page_sizes {
            let mut row = vec![format!("{ps} B")];
            for &pool in &pool_sizes {
                let cfg = IndexConfig {
                    page_size: ps,
                    pool_pages: pool,
                    ..Default::default()
                };
                let (_, rep) = measure_build(kind, &map, cfg);
                row.push(rep.disk_accesses.to_string());
            }
            rows.push(row);
        }
        println!("{}", render_table(&rows));
    }
    println!("shape check: rows and columns should decrease; PMR < R+ cellwise.");
}
