//! Node-scan kernel microbenchmark: layout × ISA × entry-order matrix.
//!
//! The hot loop of every query is "test each bounding rectangle on one
//! node page against the query region". This binary races the
//! implementations of that loop over synthetic leaf pages of 256, 512 and
//! 1024 entries (raw byte layouts, no pool):
//!
//! * **aos-scalar** — the pre-SoA baseline: interleaved 20-byte entries
//!   (the retired format-v1 page layout, rebuilt here for comparison)
//!   scanned by the 4-wide blocked branch-free loop the kernels used
//!   through PR 7. Whatever vectorization it gets is the
//!   auto-vectorizer's.
//! * **soa-scalar** — the v2 structure-of-arrays lanes scanned by the
//!   portable blocked-scalar kernel ([`Isa::Scalar`]).
//! * **soa-sse2** / **soa-avx2** — the same lanes through the explicit
//!   `std::arch` kernels with movemask survivor extraction (4- and 8-wide;
//!   rows appear only when the host CPU supports the ISA).
//!
//! Pages are measured under both intra-node entry orders
//! ([`EntryOrder::Storage`] scatter and [`EntryOrder::Hilbert`]): Hilbert
//! sorting clusters window-survivors into runs, which changes how often a
//! SIMD block is all-miss (skipped with one movemask test) versus mixed —
//! the ordering effect the SIMD R-tree literature reports.
//!
//! Every variant must produce the identical survivor aggregate — checked
//! here per cell, and proven survivor-by-survivor in the differential
//! tests of `lsdb-core`. `--json PATH` additionally writes the matrix as
//! `BENCH_scan.json` rows.
//!
//! Usage: `scanbench [--iters N] [--json PATH]`

use lsdb_bench::report::render_table;
use lsdb_core::rectnode::{order_entries, Entry, EntryOrder, RectNode, ENTRY, HDR};
use lsdb_core::scan::{
    scan_containing_point_with, scan_intersecting_with, scan_min_dist2_with, EntryScan, Isa,
};
use lsdb_geom::{Point, Rect};
use lsdb_rng::StdRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Entry counts per synthetic page. 1 KB paper pages hold ~50 entries;
/// the larger sizes show how the kernels scale when pages do.
const PAGE_ENTRIES: [usize; 3] = [256, 512, 1024];

/// Generate the entry set for one synthetic leaf page, mirroring the
/// differential tests: 25% zero-area rectangles.
fn random_entries(rng: &mut StdRng, n: usize) -> Vec<Entry> {
    (0..n)
        .map(|i| {
            let x0 = rng.gen_range(-1000..1000);
            let y0 = rng.gen_range(-1000..1000);
            let (w, h) = if rng.gen_bool(0.25) {
                (0, 0)
            } else {
                (rng.gen_range(0..100), rng.gen_range(0..100))
            };
            Entry {
                rect: Rect::new(x0, y0, x0 + w, y0 + h),
                child: i as u32,
            }
        })
        .collect()
}

/// Encode entries as a v2 SoA page.
fn soa_page(entries: &[Entry]) -> Vec<u8> {
    let mut buf = vec![0u8; HDR + entries.len() * ENTRY];
    RectNode::init(&mut buf, true);
    for &e in entries {
        RectNode::push(&mut buf, e);
    }
    buf
}

// ----------------------------------------------------------------------
// The retired format-v1 AoS layout + its blocked auto-vectorized kernels,
// rebuilt here as the baseline the SoA/SIMD rows are measured against.
// ----------------------------------------------------------------------

/// Encode entries in the interleaved v1 layout: 24-byte header, then
/// 20-byte records (xlo, ylo, xhi, yhi, child — all i32/u32 LE).
fn aos_page(entries: &[Entry]) -> Vec<u8> {
    let mut buf = vec![0u8; HDR + entries.len() * ENTRY];
    buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
    for (i, e) in entries.iter().enumerate() {
        let at = HDR + i * ENTRY;
        buf[at..at + 4].copy_from_slice(&e.rect.min.x.to_le_bytes());
        buf[at + 4..at + 8].copy_from_slice(&e.rect.min.y.to_le_bytes());
        buf[at + 8..at + 12].copy_from_slice(&e.rect.max.x.to_le_bytes());
        buf[at + 12..at + 16].copy_from_slice(&e.rect.max.y.to_le_bytes());
        buf[at + 16..at + 20].copy_from_slice(&e.child.to_le_bytes());
    }
    buf
}

#[inline(always)]
fn aos_entry(buf: &[u8], i: usize) -> Entry {
    let at = HDR + i * ENTRY;
    let word = |o: usize| i32::from_le_bytes(buf[at + o..at + o + 4].try_into().unwrap());
    Entry {
        rect: Rect::new(word(0), word(4), word(8), word(12)),
        child: word(16) as u32,
    }
}

fn aos_count(buf: &[u8]) -> usize {
    u16::from_le_bytes([buf[2], buf[3]]) as usize
}

/// The PR 5–7 window kernel: 4-wide blocks, branch-free predicate
/// evaluation over interleaved records, emission behind a branch.
fn aos_intersecting(buf: &[u8], w: &Rect, mut f: impl FnMut(Entry)) {
    let n = aos_count(buf);
    let mut i = 0;
    let mut keep = [false; 4];
    while i + 4 <= n {
        for (j, k) in keep.iter_mut().enumerate() {
            let e = aos_entry(buf, i + j);
            *k = (w.min.x <= e.rect.max.x)
                & (e.rect.min.x <= w.max.x)
                & (w.min.y <= e.rect.max.y)
                & (e.rect.min.y <= w.max.y);
        }
        for (j, k) in keep.iter().enumerate() {
            if *k {
                f(aos_entry(buf, i + j));
            }
        }
        i += 4;
    }
    for k in i..n {
        let e = aos_entry(buf, k);
        if w.intersects(&e.rect) {
            f(e);
        }
    }
}

fn aos_containing(buf: &[u8], p: Point, mut f: impl FnMut(Entry)) {
    let n = aos_count(buf);
    let mut i = 0;
    let mut keep = [false; 4];
    while i + 4 <= n {
        for (j, k) in keep.iter_mut().enumerate() {
            let e = aos_entry(buf, i + j);
            *k = (e.rect.min.x <= p.x)
                & (p.x <= e.rect.max.x)
                & (e.rect.min.y <= p.y)
                & (p.y <= e.rect.max.y);
        }
        for (j, k) in keep.iter().enumerate() {
            if *k {
                f(aos_entry(buf, i + j));
            }
        }
        i += 4;
    }
    for k in i..n {
        let e = aos_entry(buf, k);
        if e.rect.contains_point(p) {
            f(e);
        }
    }
}

fn aos_min_dist2(buf: &[u8], p: Point, mut f: impl FnMut(Entry, i64)) {
    let (px, py) = (p.x as i64, p.y as i64);
    let n = aos_count(buf);
    let mut i = 0;
    let mut d2 = [0i64; 4];
    while i + 4 <= n {
        for (j, d) in d2.iter_mut().enumerate() {
            let e = aos_entry(buf, i + j);
            let dx = (e.rect.min.x as i64 - px)
                .max(0)
                .max(px - e.rect.max.x as i64);
            let dy = (e.rect.min.y as i64 - py)
                .max(0)
                .max(py - e.rect.max.y as i64);
            *d = dx * dx + dy * dy;
        }
        for (j, d) in d2.iter().enumerate() {
            f(aos_entry(buf, i + j), *d);
        }
        i += 4;
    }
    for k in i..n {
        let e = aos_entry(buf, k);
        f(e, e.rect.dist2_point(p));
    }
}

// ----------------------------------------------------------------------
// Harness
// ----------------------------------------------------------------------

/// Run `f` `iters` times over the page and report nanoseconds per entry
/// plus the survivor aggregate (for cross-variant agreement checks).
fn bench(iters: usize, n: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    // One untimed pass warms the page into cache.
    let mut check = f();
    let start = Instant::now();
    for _ in 0..iters {
        check = check.wrapping_add(f());
    }
    let ns = start.elapsed().as_nanos() as f64;
    (ns / (iters as f64 * n as f64), check)
}

/// One matrix cell: a (predicate, page size, order, variant) timing.
struct Cell {
    predicate: &'static str,
    entries: usize,
    order: EntryOrder,
    variant: String,
    ns_per_entry: f64,
}

fn main() {
    let mut iters = 20_000usize;
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iters = args[i].parse().expect("--iters N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => {
                eprintln!("usage: scanbench [--iters N] [--json PATH] (unknown arg {other})");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let isas: Vec<Isa> = Isa::ALL.into_iter().filter(|i| i.available()).collect();
    let mut rng = StdRng::seed_from_u64(0x5CA7);
    let window = Rect::new(-300, -300, 250, 400);
    let probe = Point::new(17, -42);

    let mut cells: Vec<Cell> = Vec::new();
    let mut header = vec![
        "predicate".to_string(),
        "entries".to_string(),
        "order".to_string(),
        "aos-scalar ns/e".to_string(),
    ];
    for isa in &isas {
        header.push(format!("soa-{} ns/e", isa.label()));
    }
    header.push("best vs aos".to_string());
    let mut rows = vec![header];

    for n in PAGE_ENTRIES {
        let base = random_entries(&mut rng, n);
        for order in [EntryOrder::Storage, EntryOrder::Hilbert] {
            let mut entries = base.clone();
            order_entries(&mut entries, order);
            let aos = aos_page(&entries);
            let soa = soa_page(&entries);
            let aos_buf = aos.as_slice();
            let soa_buf = soa.as_slice();

            // --- window intersection ---------------------------------
            let (aos_ns, want) = bench(iters, n, || {
                let mut hits = 0u64;
                aos_intersecting(black_box(aos_buf), &window, |e| hits += e.child as u64);
                hits
            });
            let mut row = vec![
                "window".to_string(),
                n.to_string(),
                order.label().to_string(),
                format!("{aos_ns:.2}"),
            ];
            cells.push(cell("window", n, order, "aos-scalar", aos_ns));
            let mut best = f64::INFINITY;
            for &isa in &isas {
                let (ns, got) = bench(iters, n, || {
                    let mut hits = 0u64;
                    let scan = EntryScan::of_node(black_box(soa_buf));
                    scan_intersecting_with(isa, &scan, &window, |e| hits += e.child as u64);
                    hits
                });
                assert_eq!(got, want, "window survivors diverged on {isa:?}");
                row.push(format!("{ns:.2}"));
                cells.push(cell(
                    "window",
                    n,
                    order,
                    &format!("soa-{}", isa.label()),
                    ns,
                ));
                best = best.min(ns);
            }
            row.push(format!("{:.2}x", aos_ns / best));
            rows.push(row);

            // --- point containment -----------------------------------
            let (aos_ns, want) = bench(iters, n, || {
                let mut hits = 0u64;
                aos_containing(black_box(aos_buf), probe, |e| hits += e.child as u64);
                hits
            });
            let mut row = vec![
                "point".to_string(),
                n.to_string(),
                order.label().to_string(),
                format!("{aos_ns:.2}"),
            ];
            cells.push(cell("point", n, order, "aos-scalar", aos_ns));
            let mut best = f64::INFINITY;
            for &isa in &isas {
                let (ns, got) = bench(iters, n, || {
                    let mut hits = 0u64;
                    let scan = EntryScan::of_node(black_box(soa_buf));
                    scan_containing_point_with(isa, &scan, probe, |e| hits += e.child as u64);
                    hits
                });
                assert_eq!(got, want, "point survivors diverged on {isa:?}");
                row.push(format!("{ns:.2}"));
                cells.push(cell("point", n, order, &format!("soa-{}", isa.label()), ns));
                best = best.min(ns);
            }
            row.push(format!("{:.2}x", aos_ns / best));
            rows.push(row);

            // --- min distance ----------------------------------------
            let (aos_ns, want) = bench(iters, n, || {
                let mut acc = 0u64;
                aos_min_dist2(black_box(aos_buf), probe, |_, d| {
                    acc = acc.wrapping_add(d as u64)
                });
                acc
            });
            let mut row = vec![
                "dist2".to_string(),
                n.to_string(),
                order.label().to_string(),
                format!("{aos_ns:.2}"),
            ];
            cells.push(cell("dist2", n, order, "aos-scalar", aos_ns));
            let mut best = f64::INFINITY;
            for &isa in &isas {
                let (ns, got) = bench(iters, n, || {
                    let mut acc = 0u64;
                    let scan = EntryScan::of_node(black_box(soa_buf));
                    scan_min_dist2_with(isa, &scan, probe, |_, d| acc = acc.wrapping_add(d as u64));
                    acc
                });
                assert_eq!(got, want, "dist2 sums diverged on {isa:?}");
                row.push(format!("{ns:.2}"));
                cells.push(cell("dist2", n, order, &format!("soa-{}", isa.label()), ns));
                best = best.min(ns);
            }
            row.push(format!("{:.2}x", aos_ns / best));
            rows.push(row);
        }
    }

    println!(
        "Node-scan kernel matrix ({iters} iterations per cell, ns per entry; host ISAs: {})\n",
        isas.iter()
            .map(|i| i.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("{}", render_table(&rows));
    println!("aos-scalar = retired interleaved v1 layout, 4-wide blocked auto-vectorized loop;");
    println!("soa-*      = v2 lane layout through lsdb_core::scan on the named ISA;");
    println!("order      = intra-node entry order (hilbert clusters window survivors into runs).");

    if let Some(path) = json_path {
        let doc = render_scan_json(iters, &isas, &cells);
        lsdb_bench::json::write_file(std::path::Path::new(&path), &doc)
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path}");
    }
}

fn cell(
    predicate: &'static str,
    entries: usize,
    order: EntryOrder,
    variant: &str,
    ns: f64,
) -> Cell {
    Cell {
        predicate,
        entries,
        order,
        variant: variant.to_string(),
        ns_per_entry: ns,
    }
}

/// Deterministic-key-order JSON document for `BENCH_scan.json`, in the
/// same hand-rolled style as `lsdb_bench::json` (ns values naturally vary
/// run to run; everything else diffs clean).
fn render_scan_json(iters: usize, isas: &[Isa], cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"scan_kernels\",");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(
        out,
        "  \"host_isas\": [{}],",
        isas.iter()
            .map(|i| format!("\"{}\"", i.label()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"predicate\": \"{}\", \"entries\": {}, \"order\": \"{}\", \
             \"variant\": \"{}\", \"ns_per_entry\": {:.3}}}",
            c.predicate,
            c.entries,
            c.order.label(),
            c.variant,
            c.ns_per_entry,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
