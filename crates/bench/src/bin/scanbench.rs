//! Node-scan kernel microbenchmark: what the batched kernels in
//! `lsdb_core::scan` buy over the per-entry loops the engines used to run.
//!
//! Three implementations of each predicate race over synthetic leaf pages
//! of 256, 512 and 1024 entries (raw `RectNode` byte layout, no pool):
//!
//! * **entries+loop** — the pre-kernel query path: decode the whole page
//!   into a `Vec<Entry>` (one allocation per visit), then filter;
//! * **per-entry** — decode each entry in place with [`RectNode::entry`]
//!   and test it, no allocation but one bounds-checked decode per entry;
//! * **kernel** — the batched kernels ([`scan_intersecting`],
//!   [`scan_containing_point`], [`scan_min_dist2`]): one zero-copy
//!   [`EntryScan`] view, 4-wide branch-free rectangle tests.
//!
//! All three produce identical survivor sets (the differential tests in
//! `lsdb-core` prove it); this binary only measures throughput.
//!
//! Usage: `cargo run --release -p lsdb-bench --bin scanbench -- [--iters N]`

use lsdb_bench::report::render_table;
use lsdb_core::rectnode::{Entry, RectNode, ENTRY, HDR};
use lsdb_core::scan::{scan_containing_point, scan_intersecting, scan_min_dist2, EntryScan};
use lsdb_geom::{Point, Rect};
use lsdb_rng::StdRng;
use std::hint::black_box;
use std::time::Instant;

/// Entry counts per synthetic page. 1 KB paper pages hold ~50 entries;
/// the larger sizes show how the kernels scale when pages do.
const PAGE_ENTRIES: [usize; 3] = [256, 512, 1024];

/// Build a leaf page of `n` random entries in the on-disk byte layout,
/// mirroring the differential tests: 25% zero-area rectangles.
fn random_page(rng: &mut StdRng, n: usize) -> Vec<u8> {
    let mut buf = vec![0u8; HDR + n * ENTRY];
    RectNode::init(&mut buf, true);
    for i in 0..n {
        let x0 = rng.gen_range(-1000..1000);
        let y0 = rng.gen_range(-1000..1000);
        let (w, h) = if rng.gen_bool(0.25) {
            (0, 0)
        } else {
            (rng.gen_range(0..100), rng.gen_range(0..100))
        };
        RectNode::push(
            &mut buf,
            Entry {
                rect: Rect::new(x0, y0, x0 + w, y0 + h),
                child: i as u32,
            },
        );
    }
    buf
}

/// Run `f` `iters` times over the page and report nanoseconds per entry.
fn bench(iters: usize, n: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    // One untimed pass warms the page into cache.
    let mut check = f();
    let start = Instant::now();
    for _ in 0..iters {
        check = check.wrapping_add(f());
    }
    let ns = start.elapsed().as_nanos() as f64;
    (ns / (iters as f64 * n as f64), check)
}

fn main() {
    let mut iters = 20_000usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iters = args[i].parse().expect("--iters N");
            }
            other => {
                eprintln!("usage: scanbench [--iters N] (unknown arg {other})");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut rng = StdRng::seed_from_u64(0x5CA7);
    let window = Rect::new(-300, -300, 250, 400);
    let probe = Point::new(17, -42);

    let mut rows = vec![vec![
        "predicate".to_string(),
        "entries/page".to_string(),
        "entries+loop ns/e".to_string(),
        "per-entry ns/e".to_string(),
        "kernel ns/e".to_string(),
        "kernel speedup".to_string(),
    ]];

    for n in PAGE_ENTRIES {
        let page = random_page(&mut rng, n);
        let buf = page.as_slice();

        // --- window intersection -------------------------------------
        let (vec_ns, a) = bench(iters, n, || {
            let mut hits = 0u64;
            for e in RectNode::entries(black_box(buf)) {
                if window.intersects(&e.rect) {
                    hits += e.child as u64;
                }
            }
            hits
        });
        let (per_ns, b) = bench(iters, n, || {
            let mut hits = 0u64;
            for i in 0..RectNode::count(black_box(buf)) {
                let e = RectNode::entry(buf, i);
                if window.intersects(&e.rect) {
                    hits += e.child as u64;
                }
            }
            hits
        });
        let (ker_ns, c) = bench(iters, n, || {
            let mut hits = 0u64;
            let scan = EntryScan::of_node(black_box(buf));
            scan_intersecting(&scan, &window, |e| hits += e.child as u64);
            hits
        });
        assert!(a == b && b == c, "window survivor sets diverged");
        rows.push(row("window", n, vec_ns, per_ns, ker_ns));

        // --- point containment ---------------------------------------
        let (vec_ns, a) = bench(iters, n, || {
            let mut hits = 0u64;
            for e in RectNode::entries(black_box(buf)) {
                if e.rect.contains_point(probe) {
                    hits += e.child as u64;
                }
            }
            hits
        });
        let (per_ns, b) = bench(iters, n, || {
            let mut hits = 0u64;
            for i in 0..RectNode::count(black_box(buf)) {
                let e = RectNode::entry(buf, i);
                if e.rect.contains_point(probe) {
                    hits += e.child as u64;
                }
            }
            hits
        });
        let (ker_ns, c) = bench(iters, n, || {
            let mut hits = 0u64;
            let scan = EntryScan::of_node(black_box(buf));
            scan_containing_point(&scan, probe, |e| hits += e.child as u64);
            hits
        });
        assert!(a == b && b == c, "point survivor sets diverged");
        rows.push(row("point", n, vec_ns, per_ns, ker_ns));

        // --- min distance --------------------------------------------
        let (vec_ns, a) = bench(iters, n, || {
            let mut acc = 0u64;
            for e in RectNode::entries(black_box(buf)) {
                acc = acc.wrapping_add(e.rect.dist2_point(probe) as u64);
            }
            acc
        });
        let (per_ns, b) = bench(iters, n, || {
            let mut acc = 0u64;
            for i in 0..RectNode::count(black_box(buf)) {
                let e = RectNode::entry(buf, i);
                acc = acc.wrapping_add(e.rect.dist2_point(probe) as u64);
            }
            acc
        });
        let (ker_ns, c) = bench(iters, n, || {
            let mut acc = 0u64;
            let scan = EntryScan::of_node(black_box(buf));
            scan_min_dist2(&scan, probe, |_, d| acc = acc.wrapping_add(d as u64));
            acc
        });
        assert!(a == b && b == c, "dist2 sums diverged");
        rows.push(row("dist2", n, vec_ns, per_ns, ker_ns));
    }

    println!("Node-scan kernels vs per-entry loops ({iters} iterations per cell, ns per entry)\n");
    println!("{}", render_table(&rows));
    println!("entries+loop = decode page into Vec<Entry>, then filter (pre-kernel query path);");
    println!("per-entry    = in-place single-entry decode + test;");
    println!("kernel       = lsdb_core::scan batched 4-wide branch-free kernels.");
}

fn row(pred: &str, n: usize, vec_ns: f64, per_ns: f64, ker_ns: f64) -> Vec<String> {
    vec![
        pred.to_string(),
        n.to_string(),
        format!("{vec_ns:.2}"),
        format!("{per_ns:.2}"),
        format!("{ker_ns:.2}"),
        format!("{:.2}x", per_ns / ker_ns),
    ]
}
