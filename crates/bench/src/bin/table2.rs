//! Reproduce **Table 2** — absolute per-query metrics for Charles county.
//!
//! For each of the seven workloads × {PMR, R+, R*}: average disk accesses,
//! segment comparisons, and bounding-box (R-trees) / bounding-bucket (PMR)
//! computations over `LSDB_QUERIES` queries (default 1000, as in the
//! paper).
//!
//! Usage: `cargo run --release -p lsdb-bench --bin table2`

use lsdb_bench::report::{fmt, render_table};
use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, county_at_scale, queries_per_type, IndexKind};
use lsdb_core::IndexConfig;

fn main() {
    let cfg = IndexConfig::default();
    let map = county_at_scale("Charles");
    let n = queries_per_type();
    println!(
        "Table 2: Charles county ({} segments), {} queries per type\n",
        map.len(),
        n
    );
    let wb = QueryWorkbench::new(&map, n, 0xC4A5);
    // Build the three structures once; the pool stays warm within each
    // workload, exactly like the paper's batched runs.
    let mut results = Vec::new();
    for kind in IndexKind::paper_three() {
        let mut idx = build_index(kind, &map, cfg);
        let per: Vec<_> = Workload::ALL
            .iter()
            .map(|&w| wb.run(w, idx.as_mut()))
            .collect();
        results.push(per);
    }
    // Paper order: PMR, R+, R*.
    let order = [2usize, 1, 0];
    let names = ["PMR", "R+", "R*"];
    let mut rows = vec![vec![
        "query".to_string(),
        "metric".to_string(),
        names[0].to_string(),
        names[1].to_string(),
        names[2].to_string(),
    ]];
    for (wi, w) in Workload::ALL.iter().enumerate() {
        for (mi, metric) in ["disk accesses", "segment comps", "bbox/node comps"]
            .iter()
            .enumerate()
        {
            let mut row = vec![
                if mi == 0 { w.label().to_string() } else { String::new() },
                metric.to_string(),
            ];
            for &si in &order {
                let r = &results[si][wi];
                let v = match mi {
                    0 => r.disk_accesses,
                    1 => r.seg_comps,
                    _ => r.bbox_comps,
                };
                row.push(fmt(v));
            }
            rows.push(row);
        }
    }
    println!("{}", render_table(&rows));

    // Context the paper discusses alongside Table 2.
    let poly2 = &results[0]; // R* slot (index 0 = RStar build order)
    let _ = poly2;
    let avg_poly: Vec<f64> = order
        .iter()
        .map(|&si| results[si][4].avg_result)
        .collect();
    println!(
        "average polygon size (2-stage): PMR {:.0}, R+ {:.0}, R* {:.0}  (paper: 132 for rural Charles)",
        avg_poly[0], avg_poly[1], avg_poly[2]
    );
}
