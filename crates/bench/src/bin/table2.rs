//! Reproduce **Table 2** — absolute per-query metrics for Charles county.
//!
//! For each of the seven workloads × {PMR, R+, R*}: average disk accesses,
//! segment comparisons, and bounding-box (R-trees) / bounding-bucket (PMR)
//! computations over `--queries` queries (default 1000, as in the paper).
//!
//! With `--threads N` each workload batch is fanned across N worker
//! threads sharing the index; the table is identical at any thread count —
//! only the reported wall time changes.
//!
//! Usage: `cargo run --release -p lsdb-bench --bin table2 -- [--queries N] [--threads N]`

use lsdb_bench::json::{self, QueryRecord};
use lsdb_bench::report::{fmt, render_table};
use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind, WorkloadConfig};
use lsdb_core::IndexConfig;
use std::time::Instant;

fn main() {
    let cfg = IndexConfig::default();
    let wcfg = WorkloadConfig::from_args();
    let map = wcfg.county("Charles");
    println!(
        "Table 2: Charles county ({} segments), {} queries per type, {} thread(s)\n",
        map.len(),
        wcfg.queries,
        wcfg.threads
    );
    let wb = QueryWorkbench::new(&map, wcfg.queries, 0xC4A5);
    // Build the three structures once; queries then share each structure
    // read-only, so the batch parallelizes without changing any counter.
    // Only the query phase is timed — builds are inherently serial.
    let indexes: Vec<_> = IndexKind::paper_three()
        .iter()
        .map(|&kind| build_index(kind, &map, cfg))
        .collect();
    let start = Instant::now();
    let mut results = Vec::new();
    let mut walls_ms = Vec::new();
    for idx in &indexes {
        let mut per = Vec::new();
        let mut wall = Vec::new();
        for &w in Workload::ALL.iter() {
            let t = Instant::now();
            per.push(wb.run_threaded(w, idx.as_ref(), wcfg.threads));
            wall.push(t.elapsed().as_secs_f64() * 1e3);
        }
        results.push(per);
        walls_ms.push(wall);
    }
    let query_secs = start.elapsed().as_secs_f64();
    // Paper order: PMR, R+, R*.
    let order = [2usize, 1, 0];
    let names = ["PMR", "R+", "R*"];
    let mut rows = vec![vec![
        "query".to_string(),
        "metric".to_string(),
        names[0].to_string(),
        names[1].to_string(),
        names[2].to_string(),
    ]];
    for (wi, w) in Workload::ALL.iter().enumerate() {
        for (mi, metric) in ["disk accesses", "segment comps", "bbox/node comps"]
            .iter()
            .enumerate()
        {
            let mut row = vec![
                if mi == 0 {
                    w.label().to_string()
                } else {
                    String::new()
                },
                metric.to_string(),
            ];
            for &si in &order {
                let r = &results[si][wi];
                let v = match mi {
                    0 => r.disk_accesses,
                    1 => r.seg_comps,
                    _ => r.bbox_comps,
                };
                row.push(fmt(v));
            }
            rows.push(row);
        }
    }
    println!("{}", render_table(&rows));

    // Context the paper discusses alongside Table 2.
    let avg_poly: Vec<f64> = order.iter().map(|&si| results[si][4].avg_result).collect();
    println!(
        "average polygon size (2-stage): PMR {:.0}, R+ {:.0}, R* {:.0}  (paper: 132 for rural Charles)",
        avg_poly[0], avg_poly[1], avg_poly[2]
    );
    println!(
        "query wall time: {query_secs:.2}s on {} thread(s)",
        wcfg.threads
    );

    if let Some(path) = &wcfg.json {
        let mut records = Vec::new();
        for &si in &order {
            for (wi, w) in Workload::ALL.iter().enumerate() {
                records.push(QueryRecord {
                    structure: IndexKind::paper_three()[si].label(),
                    workload: w.label(),
                    result: results[si][wi],
                    wall_ms: walls_ms[si][wi],
                });
            }
        }
        let doc = json::render_queries(&map.name, map.len(), wcfg.queries, wcfg.threads, &records);
        match json::write_file(path, &doc) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
