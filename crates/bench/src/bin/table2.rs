//! Reproduce **Table 2** — absolute per-query metrics for Charles county.
//!
//! For each of the seven workloads × {PMR, R+, R*}: average disk accesses,
//! segment comparisons, and bounding-box (R-trees) / bounding-bucket (PMR)
//! computations over `--queries` queries (default 1000, as in the paper).
//!
//! With `--threads N` each workload batch is fanned across N worker
//! threads sharing the index; the table is identical at any thread count —
//! only the reported wall time changes.
//!
//! Usage: `cargo run --release -p lsdb-bench --bin table2 -- [--queries N] [--threads N]`

use lsdb_bench::json::{self, QueryRecord};
use lsdb_bench::report::{fmt, render_table};
use lsdb_bench::workloads::{insert_stream, QueryWorkbench, Workload, WorkloadResult};
use lsdb_bench::{build_index, IndexKind, WorkloadConfig};
use lsdb_core::{IndexConfig, LiveIndex};
use std::time::Instant;

fn main() {
    let cfg = IndexConfig::default();
    let wcfg = WorkloadConfig::from_args();
    let map = wcfg.county("Charles");
    println!(
        "Table 2: Charles county ({} segments), {} queries per type, {} thread(s)\n",
        map.len(),
        wcfg.queries,
        wcfg.threads
    );
    let wb = QueryWorkbench::new(&map, wcfg.queries, 0xC4A5);
    // Build the three structures once; queries then share each structure
    // read-only, so the batch parallelizes without changing any counter.
    // Only the query phase is timed — builds are inherently serial.
    let indexes: Vec<_> = IndexKind::paper_three()
        .iter()
        .map(|&kind| build_index(kind, &map, cfg))
        .collect();
    // Every counter is deterministic, so repetition only serves the wall
    // clocks: each row's wall is the minimum over `WALL_REPS` runs, the
    // standard way to strip scheduler noise from a shared host. Counters
    // come from the first run (the guard asserts they never vary).
    const WALL_REPS: usize = 3;
    let start = Instant::now();
    let mut results = Vec::new();
    let mut walls_ms = Vec::new();
    for idx in &indexes {
        let mut per = Vec::new();
        let mut wall = Vec::new();
        for &w in Workload::ALL.iter() {
            let mut best = f64::INFINITY;
            for rep in 0..WALL_REPS {
                let t = Instant::now();
                let r = wb.run_threaded(w, idx.as_ref(), wcfg.threads);
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                if rep == 0 {
                    per.push(r);
                }
            }
            wall.push(best);
        }
        results.push(per);
        walls_ms.push(wall);
    }
    // The set-oriented workloads again as single locality-sorted batches:
    // identical counters (the guard asserts it), lower wall-clock — warm
    // page pins and the segment mini-cache carry across Morton neighbors.
    const BATCHED: [Workload; 2] = [Workload::Range, Workload::PolygonTwoStage];
    let mut batched_results = Vec::new();
    let mut batched_walls_ms = Vec::new();
    for idx in &indexes {
        let mut per = Vec::new();
        let mut wall = Vec::new();
        for &w in BATCHED.iter() {
            let mut best = f64::INFINITY;
            for rep in 0..WALL_REPS {
                let t = Instant::now();
                let r = wb.run_batched(w, idx.as_ref());
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                if rep == 0 {
                    per.push(r);
                }
            }
            wall.push(best);
        }
        batched_results.push(per);
        batched_walls_ms.push(wall);
    }
    // Live-mutation rows: each structure fronted by a [`LiveIndex`]
    // (volatile op log — WAL cost is measured by the pager's own
    // benches, this row isolates the in-memory maintenance path). The
    // mixed row interleaves the range stream with inserts 90/10 exactly
    // as a read-mostly server workload would; the insert row then times
    // the pure write path on the already-mutated structure. Mutations
    // change the index, so these rows run once, after every read-only
    // measurement, and report single-shot walls.
    const MIXED_LABEL: &str = "Range+Insert (90/10)";
    const INSERT_LABEL: &str = "Insert (live)";
    let insert_segs = insert_stream(&map, wcfg.queries.max(9));
    let mut mixed_results = Vec::new();
    let mut mixed_walls_ms = Vec::new();
    let mut insert_results = Vec::new();
    let mut insert_walls_ms = Vec::new();
    for idx in indexes {
        let live = LiveIndex::volatile(idx);
        let t = Instant::now();
        let r = wb.run_mixed_range_insert(&live, &insert_segs);
        mixed_walls_ms.push(t.elapsed().as_secs_f64() * 1e3);
        mixed_results.push(r);
        let t = Instant::now();
        for seg in &insert_segs {
            live.insert(*seg).expect("volatile insert cannot fail");
        }
        insert_walls_ms.push(t.elapsed().as_secs_f64() * 1e3);
        insert_results.push(WorkloadResult {
            queries: insert_segs.len(),
            ..WorkloadResult::default()
        });
    }
    let query_secs = start.elapsed().as_secs_f64();
    // Paper order: PMR, R+, R*.
    let order = [2usize, 1, 0];
    let names = ["PMR", "R+", "R*"];
    let mut rows = vec![vec![
        "query".to_string(),
        "metric".to_string(),
        names[0].to_string(),
        names[1].to_string(),
        names[2].to_string(),
    ]];
    for (wi, w) in Workload::ALL.iter().enumerate() {
        for (mi, metric) in ["disk accesses", "segment comps", "bbox/node comps"]
            .iter()
            .enumerate()
        {
            let mut row = vec![
                if mi == 0 {
                    w.label().to_string()
                } else {
                    String::new()
                },
                metric.to_string(),
            ];
            for &si in &order {
                let r = &results[si][wi];
                let v = match mi {
                    0 => r.disk_accesses,
                    1 => r.seg_comps,
                    _ => r.bbox_comps,
                };
                row.push(fmt(v));
            }
            rows.push(row);
        }
    }
    println!("{}", render_table(&rows));

    // Context the paper discusses alongside Table 2.
    let avg_poly: Vec<f64> = order.iter().map(|&si| results[si][4].avg_result).collect();
    println!(
        "average polygon size (2-stage): PMR {:.0}, R+ {:.0}, R* {:.0}  (paper: 132 for rural Charles)",
        avg_poly[0], avg_poly[1], avg_poly[2]
    );
    println!(
        "query wall time: {query_secs:.2}s on {} thread(s)",
        wcfg.threads
    );
    for (bi, w) in BATCHED.iter().enumerate() {
        let line: Vec<String> = order
            .iter()
            .enumerate()
            .map(|(oi, &si)| {
                let wi = Workload::ALL.iter().position(|x| x == w).unwrap();
                format!(
                    "{} {:.1} -> {:.1} ms",
                    names[oi], walls_ms[si][wi], batched_walls_ms[si][bi]
                )
            })
            .collect();
        println!(
            "{} wall (singleton -> batched): {}",
            w.label(),
            line.join(", ")
        );
    }
    let live_line: Vec<String> = order
        .iter()
        .enumerate()
        .map(|(oi, &si)| {
            let inserts_per_sec =
                insert_results[si].queries as f64 / (insert_walls_ms[si] / 1e3).max(1e-9);
            format!(
                "{} {:.1} ms mixed, {:.0} inserts/s",
                names[oi], mixed_walls_ms[si], inserts_per_sec
            )
        })
        .collect();
    println!(
        "live mutation ({} inserts): {}",
        insert_segs.len(),
        live_line.join(", ")
    );

    if let Some(path) = &wcfg.json {
        let mut records = Vec::new();
        for &si in &order {
            for (wi, w) in Workload::ALL.iter().enumerate() {
                records.push(QueryRecord {
                    structure: IndexKind::paper_three()[si].label(),
                    workload: w.label(),
                    result: results[si][wi],
                    wall_ms: walls_ms[si][wi],
                });
            }
            for (bi, w) in BATCHED.iter().enumerate() {
                records.push(QueryRecord {
                    structure: IndexKind::paper_three()[si].label(),
                    workload: w.batched_label(),
                    result: batched_results[si][bi],
                    wall_ms: batched_walls_ms[si][bi],
                });
            }
            records.push(QueryRecord {
                structure: IndexKind::paper_three()[si].label(),
                workload: MIXED_LABEL,
                result: mixed_results[si],
                wall_ms: mixed_walls_ms[si],
            });
            records.push(QueryRecord {
                structure: IndexKind::paper_three()[si].label(),
                workload: INSERT_LABEL,
                result: insert_results[si],
                wall_ms: insert_walls_ms[si],
            });
        }
        let doc = json::render_queries(&map.name, map.len(), wcfg.queries, wcfg.threads, &records);
        match json::write_file(path, &doc) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
