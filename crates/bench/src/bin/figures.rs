//! Reproduce **Figures 7, 8 and 9** — normalized ranges over the six
//! counties.
//!
//! * Figure 7: bounding-box computations of the R+-tree normalized by the
//!   R\*-tree (the PMR quadtree's bucket computations are ~2 orders of
//!   magnitude smaller, so the paper leaves it off this plot — we print
//!   its raw ratio for reference).
//! * Figure 8: disk accesses of R\* and R+ normalized by the PMR quadtree.
//! * Figure 9: segment comparisons normalized by the PMR quadtree.
//!
//! Each cell is the normalized range over the six maps: `avg [min..max]`.
//!
//! Usage: `cargo run --release -p lsdb-bench --bin figures`

use lsdb_bench::report::{render_table, NormalizedRange};
use lsdb_bench::workloads::{QueryWorkbench, Workload, WorkloadResult};
use lsdb_bench::{build_index, IndexKind, WorkloadConfig};
use lsdb_core::IndexConfig;

fn main() {
    let cfg = IndexConfig::default();
    let wcfg = WorkloadConfig::from_args();
    let maps = wcfg.counties();
    let n = wcfg.queries;
    println!(
        "Figures 7-9: normalized ranges over {} maps, {} queries per type\n",
        maps.len(),
        n
    );

    // results[map][structure][workload]. The six maps are measured on
    // worker threads (map-level parallelism, so each inner batch stays
    // sequential): every metric is a deterministic counter, so parallelism
    // cannot perturb the results — only wall-clock, which this binary does
    // not report.
    let results: Vec<Vec<Vec<WorkloadResult>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = maps
            .iter()
            .map(|map| {
                scope.spawn(move || {
                    let wb = QueryWorkbench::new(map, n, map.len() as u64);
                    let per_structure: Vec<Vec<WorkloadResult>> = IndexKind::paper_three()
                        .iter()
                        .map(|&kind| {
                            let idx = build_index(kind, map, cfg);
                            Workload::ALL
                                .iter()
                                .map(|&w| wb.run(w, idx.as_ref()))
                                .collect()
                        })
                        .collect();
                    eprintln!("  measured {}", map.name);
                    per_structure
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    const RSTAR: usize = 0;
    const RPLUS: usize = 1;
    const PMR: usize = 2;

    let range_over_maps = |f: &dyn Fn(&Vec<Vec<WorkloadResult>>) -> f64| -> NormalizedRange {
        let vals: Vec<f64> = results.iter().map(f).collect();
        NormalizedRange::of(&vals)
    };

    // Figure 7: relative bounding box computations (R+ / R*).
    println!("Figure 7: bounding-box computations, R+ normalized by R*");
    let mut rows = vec![vec![
        "query".to_string(),
        "R+/R*".to_string(),
        "PMR/R* (off-plot)".to_string(),
    ]];
    for (wi, w) in Workload::ALL.iter().enumerate() {
        let rplus = range_over_maps(&|m| m[RPLUS][wi].bbox_comps / m[RSTAR][wi].bbox_comps);
        let pmr = range_over_maps(&|m| m[PMR][wi].bbox_comps / m[RSTAR][wi].bbox_comps);
        rows.push(vec![w.label().to_string(), rplus.format(), pmr.format()]);
    }
    println!("{}", render_table(&rows));

    // Figure 8: relative disk accesses (normalized by PMR).
    println!("Figure 8: disk accesses normalized by the PMR quadtree");
    let mut rows = vec![vec![
        "query".to_string(),
        "PMR".to_string(),
        "R+/PMR".to_string(),
        "R*/PMR".to_string(),
    ]];
    for (wi, w) in Workload::ALL.iter().enumerate() {
        let rplus = range_over_maps(&|m| m[RPLUS][wi].disk_accesses / m[PMR][wi].disk_accesses);
        let rstar = range_over_maps(&|m| m[RSTAR][wi].disk_accesses / m[PMR][wi].disk_accesses);
        rows.push(vec![
            w.label().to_string(),
            "1.00".to_string(),
            rplus.format(),
            rstar.format(),
        ]);
    }
    println!("{}", render_table(&rows));

    // Figure 9: relative segment comparisons (normalized by PMR).
    println!("Figure 9: segment comparisons normalized by the PMR quadtree");
    let mut rows = vec![vec![
        "query".to_string(),
        "PMR".to_string(),
        "R+/PMR".to_string(),
        "R*/PMR".to_string(),
    ]];
    for (wi, w) in Workload::ALL.iter().enumerate() {
        let rplus = range_over_maps(&|m| m[RPLUS][wi].seg_comps / m[PMR][wi].seg_comps);
        let rstar = range_over_maps(&|m| m[RSTAR][wi].seg_comps / m[PMR][wi].seg_comps);
        rows.push(vec![
            w.label().to_string(),
            "1.00".to_string(),
            rplus.format(),
            rstar.format(),
        ]);
    }
    println!("{}", render_table(&rows));

    println!("paper shape: PMR slight edge in disk accesses; R+ < R* except the");
    println!("polygon query; PMR fewest segment comps on nearest-line; R-tree bbox");
    println!("comps orders of magnitude above PMR bucket comps.");
}
