//! Ablation studies beyond the paper's headline tables:
//!
//! 1. **R-tree insertion/split policies** — the paper attributes the
//!    R\*-tree's slow build to forced reinsertion and its compactness to
//!    the margin/overlap split; Guttman's quadratic and linear splits
//!    quantify that trade-off.
//! 2. **Uniform grid vs adaptive decomposition** — §2: "the uniform grid
//!    is ideal for uniformly distributed data, while quadtree-based
//!    approaches are suited for arbitrarily distributed data".
//! 3. **Deletion** — §2: the price of disjointness "is also paid when we
//!    want to delete an object": deleting the same 10% of segments from
//!    each structure.
//!
//! Usage: `cargo run --release -p lsdb-bench --bin ablation`

use lsdb_bench::report::{fmt, render_table};
use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, measure_build, IndexKind, WorkloadConfig};
use lsdb_core::{IndexConfig, SegId, SpatialIndex};

fn main() {
    let cfg = IndexConfig::default();
    let wcfg = WorkloadConfig::from_args();
    let map = wcfg.county("Anne Arundel");
    let n = wcfg.queries.min(500);
    println!(
        "Ablations on {} ({} segments), {} queries per type\n",
        map.name,
        map.len(),
        n
    );
    let wb = QueryWorkbench::new(&map, n, 0xAB1A);

    // 1 + 2: all structures on one table.
    // The STR bulk-loaded R-tree is measured separately below the dynamic
    // structures (it is not an IndexKind: it shares the R-tree type).
    let kinds = [
        IndexKind::RStar,
        IndexKind::RQuadratic,
        IndexKind::RLinear,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::Grid(64),
        IndexKind::Grid(16),
        IndexKind::Repr(8),
    ];
    let mut rows = vec![vec![
        "structure".to_string(),
        "size (KB)".to_string(),
        "build disk".to_string(),
        "build s".to_string(),
        "point disk".to_string(),
        "nearest disk".to_string(),
        "range disk".to_string(),
        "range segc".to_string(),
    ]];
    for kind in kinds {
        let (idx, rep) = measure_build(kind, &map, cfg);
        let p = wb.run(Workload::Point1, idx.as_ref());
        let near = wb.run(Workload::NearestTwoStage, idx.as_ref());
        let range = wb.run(Workload::Range, idx.as_ref());
        rows.push(vec![
            kind.label(),
            fmt(rep.size_kbytes),
            rep.disk_accesses.to_string(),
            format!("{:.2}", rep.cpu_seconds),
            fmt(p.disk_accesses),
            fmt(near.disk_accesses),
            fmt(range.disk_accesses),
            fmt(range.seg_comps),
        ]);
    }
    {
        // Extension: STR bulk loading (packed R-tree).
        let start = std::time::Instant::now();
        let mut idx = lsdb_rtree::RTree::bulk_load(&map, cfg);
        let secs = start.elapsed().as_secs_f64();
        idx.clear_cache();
        let build_disk = idx.stats().disk.total();
        idx.reset_stats();
        let p = wb.run(Workload::Point1, &idx);
        let near = wb.run(Workload::NearestTwoStage, &idx);
        let range = wb.run(Workload::Range, &idx);
        rows.push(vec![
            "R* (STR bulk)".to_string(),
            fmt(idx.size_bytes() as f64 / 1024.0),
            build_disk.to_string(),
            format!("{secs:.2}"),
            fmt(p.disk_accesses),
            fmt(near.disk_accesses),
            fmt(range.disk_accesses),
            fmt(range.seg_comps),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("expected: R* smallest/slowest-build of the R-trees; STR bulk loading");
    println!("builds a denser tree hundreds of times faster; the 16-cell grid is");
    println!("hopeless on clustered data, the 64-cell grid trades space for it; the");
    println!("representative-point 4-d grid stores compactly but cannot localize");
    println!("window or nearest searches (paper S2).\n");

    // 3: deletion cost — remove every 10th segment.
    println!("Deletion: removing 10% of the segments (disk accesses for the batch)");
    let mut rows = vec![vec![
        "structure".to_string(),
        "delete disk".to_string(),
        "size before (KB)".to_string(),
        "size after".to_string(),
    ]];
    for kind in IndexKind::paper_three() {
        let mut idx = build_index(kind, &map, cfg);
        let before = idx.size_bytes() as f64 / 1024.0;
        idx.reset_stats();
        for i in (0..map.len()).step_by(10) {
            idx.remove(SegId(i as u32));
        }
        let s = idx.stats();
        rows.push(vec![
            kind.label(),
            s.disk.total().to_string(),
            fmt(before),
            fmt(idx.size_bytes() as f64 / 1024.0),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("expected: the disjoint structures (R+, PMR) pay more per delete —");
    println!("a segment must be removed from every bucket it occupies.");
}
