//! Reproduce **Table 1** — data structure building statistics.
//!
//! For each of the six counties and each of {R*, R+, PMR}: index size in
//! KB, disk accesses during the build, and CPU seconds. The paper's shape:
//! PMR 13-43% and R+ 26-43% larger than R*; PMR fewest build disk accesses
//! on most maps and R* the most; build CPU R+ < PMR (1.5-1.7×) ≪ R*
//! (7.8-9.1×).
//!
//! Usage: `cargo run --release -p lsdb-bench --bin table1 -- [--scale 0.1]`
//! (a reduced `--scale` for a quick run).

use lsdb_bench::report::{fmt, render_table};
use lsdb_bench::{measure_build, IndexKind, WorkloadConfig};
use lsdb_core::IndexConfig;

fn main() {
    let cfg = IndexConfig::default();
    let maps = WorkloadConfig::from_args().counties();
    println!(
        "Table 1: building statistics ({} pages, {}-page LRU pool, {} maps)\n",
        cfg.page_size,
        cfg.pool_pages,
        maps.len()
    );
    let mut rows = vec![vec![
        "map name".to_string(),
        "segs".to_string(),
        "size R* (KB)".to_string(),
        "size R+".to_string(),
        "size PMR".to_string(),
        "disk R*".to_string(),
        "disk R+".to_string(),
        "disk PMR".to_string(),
        "cpu R* (s)".to_string(),
        "cpu R+".to_string(),
        "cpu PMR".to_string(),
    ]];
    let mut ratios: Vec<(f64, f64, f64, f64)> = Vec::new();
    for map in &maps {
        let mut size = Vec::new();
        let mut disk = Vec::new();
        let mut cpu = Vec::new();
        for kind in IndexKind::paper_three() {
            let (_, rep) = measure_build(kind, map, cfg);
            size.push(rep.size_kbytes);
            disk.push(rep.disk_accesses);
            cpu.push(rep.cpu_seconds);
        }
        rows.push(vec![
            map.name.clone(),
            map.len().to_string(),
            fmt(size[0]),
            fmt(size[1]),
            fmt(size[2]),
            disk[0].to_string(),
            disk[1].to_string(),
            disk[2].to_string(),
            format!("{:.2}", cpu[0]),
            format!("{:.2}", cpu[1]),
            format!("{:.2}", cpu[2]),
        ]);
        ratios.push((
            size[1] / size[0],
            size[2] / size[0],
            cpu[0] / cpu[1],
            cpu[2] / cpu[1],
        ));
    }
    println!("{}", render_table(&rows));

    println!("shape checks against the paper:");
    let avg = |f: fn(&(f64, f64, f64, f64)) -> f64| {
        ratios.iter().map(f).sum::<f64>() / ratios.len() as f64
    };
    println!(
        "  R+ size / R* size   : avg {:.2}x   (paper: 1.26-1.43x)",
        avg(|r| r.0)
    );
    println!(
        "  PMR size / R* size  : avg {:.2}x   (paper: 1.13-1.43x)",
        avg(|r| r.1)
    );
    println!(
        "  R* cpu / R+ cpu     : avg {:.1}x   (paper: 7.8-9.1x)",
        avg(|r| r.2)
    );
    println!(
        "  PMR cpu / R+ cpu    : avg {:.1}x   (paper: 1.5-1.7x)",
        avg(|r| r.3)
    );
}
