//! Reply-cache benchmark: hot-query serving under Zipf skew and
//! mutation churn.
//!
//! One synthetic TIGER county (STR bulk-packed R*-tree, paper-style
//! 1 KB pages over a 48-page pool) is served from a v3 catalog, and a
//! closed-loop client replays a stream drawn from a fixed set of
//! distinct queries whose popularity follows Zipf(θ). The sweep crosses
//! three axes:
//!
//! * `theta` — 0.0 (uniform: every distinct query equally likely, the
//!   cache's worst case) and 1.0 (classic hot-head skew),
//! * `cache_bytes` — 0 (cache off: the baseline every other cell must
//!   not regress against), a small pool that cannot hold the full
//!   distinct set (TinyLFU admission has to pick the head), and a large
//!   pool that holds everything,
//! * `mutation_pct` — 0 and 10: the percentage of requests that are
//!   `INSERT`s, each of which bumps the map epoch and orphans every
//!   cached reply. The mutation-heavy cells measure the cost of a cache
//!   that is always stale — their latency should match cache-off.
//!
//! Hit rate, latency, and disk reads per query come straight from the
//! server's v3 STATS counters and the load report; because cached
//! replies are byte-identical to cold execution (including the embedded
//! `QueryStats`), the *per-reply* counters are invariant across cells —
//! only the server-side disk column and the latency move.
//!
//! Usage: `cache [--queries N] [--connections C] [--county-segments S]
//!               [--distinct D] [--json PATH]`
//!
//! `--json` writes `BENCH_cache.json`: run parameters plus one row per
//! (theta, cache_bytes, mutation_pct) cell.

use lsdb_bench::json::write_file;
use lsdb_core::pointgen::{EndpointGen, UniformGen, WindowGen};
use lsdb_core::{IndexConfig, SpatialIndex};
use lsdb_geom::{Point, Segment};
use lsdb_rng::StdRng;
use lsdb_rtree::RTree;
use lsdb_server::{run_closed_loop_routed, Catalog, Client, Request, Server, ServerConfig};
use lsdb_tiger::{continent, CountySpec};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Base seed shared with the CLI / multimap bench so every harness
/// serves the same synthetic counties.
const CONTINENT_SEED: u64 = 0x7161;

/// Zipf skews swept: uniform (worst case) and the canonical hot head.
const THETAS: [f64; 2] = [0.0, 1.0];

/// Reply-cache pool sizes swept. 0 = off (baseline). The small pool is
/// sized so the full distinct-query set does NOT fit — admission has to
/// earn its keep — while the large pool holds every distinct reply.
const CACHE_BYTES: [u64; 3] = [0, 64 * 1024, 4 * 1024 * 1024];

/// Mutation mix swept: read-only, and one INSERT per ten requests
/// (every insert bumps the epoch and orphans the whole cache).
const MUTATION_PCT: [u32; 2] = [0, 10];

/// Paper-style county config (matches the multimap bench): pages small
/// enough that queries actually touch the pager.
fn county_cfg() -> IndexConfig {
    IndexConfig {
        page_size: 1024,
        pool_pages: 48,
        ..Default::default()
    }
}

fn county_index(spec: &CountySpec) -> Box<dyn SpatialIndex> {
    let map = lsdb_tiger::generate(spec);
    Box::new(RTree::bulk_load(&map, county_cfg()))
}

/// The fixed set of distinct queries the Zipf sampler ranks. Same
/// rotation as the multimap bench's county stream.
fn distinct_queries(spec: &CountySpec, len: usize) -> Vec<Request> {
    let map = lsdb_tiger::generate(spec);
    let mut endpoints = EndpointGen::new(&map, spec.seed ^ 0x5711);
    let mut uniform = UniformGen::new(spec.seed ^ 0x17E0);
    let mut windows = WindowGen::new(0.0005, spec.seed ^ 0x3A11);
    (0..len)
        .map(|i| match i % 4 {
            0 => Request::Incident(endpoints.next_endpoint().1),
            1 => Request::Nearest(uniform.next_point()),
            2 => Request::Knn {
                at: uniform.next_point(),
                k: (i % 3 + 1) as u32,
            },
            _ => Request::Window(windows.next_window()),
        })
        .collect()
}

/// Cumulative Zipf(θ) popularity over the distinct-query ranks.
fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

struct Params {
    queries: usize,
    connections: usize,
    segments: usize,
    distinct: usize,
}

struct Row {
    theta: f64,
    cache_bytes: u64,
    mutation_pct: u32,
    hit_rate: f64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    disk_reads_per_query: f64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
    rejections: u64,
}

fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1_000_000.0).round() / 1000.0
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn render(p: &Params, budget: u64, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"cache\",\n");
    let _ = writeln!(out, "  \"county_segments\": {},", p.segments);
    let _ = writeln!(out, "  \"queries\": {},", p.queries);
    let _ = writeln!(out, "  \"distinct_queries\": {},", p.distinct);
    let _ = writeln!(out, "  \"connections\": {},", p.connections);
    let _ = writeln!(out, "  \"budget_bytes\": {budget},");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"theta\": {}, \"cache_bytes\": {}, \"mutation_pct\": {}, \
             \"hit_rate\": {}, \"throughput_qps\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"disk_reads_per_query\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"insertions\": {}, \"evictions\": {}, \"invalidations\": {}, \
             \"rejections\": {}}}",
            num(r.theta),
            r.cache_bytes,
            r.mutation_pct,
            num((r.hit_rate * 10000.0).round() / 10000.0),
            num((r.throughput * 10.0).round() / 10.0),
            num(r.p50_ms),
            num(r.p99_ms),
            num((r.disk_reads_per_query * 1000.0).round() / 1000.0),
            r.hits,
            r.misses,
            r.insertions,
            r.evictions,
            r.invalidations,
            r.rejections,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One cell of the sweep: fresh server, fresh cache, one closed-loop
/// run, counters read back over v3 STATS.
fn run_cell(theta: f64, cache_bytes: u64, mutation_pct: u32, budget: u64, p: &Params) -> Row {
    let spec = continent(1, p.segments, CONTINENT_SEED).remove(0);
    let mut catalog = Catalog::new(budget, 1);
    {
        let spec = spec.clone();
        catalog.add_map(
            &spec.name.clone(),
            Box::new(move || Ok(county_index(&spec))),
        );
    }
    catalog.set_reply_cache_bytes(cache_bytes);
    let config = ServerConfig {
        workers: 3,
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let server = Server::bind_catalog("127.0.0.1:0", catalog, config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.is_v3(), "catalog server must speak v3");
    let (map_id, _) = client.open_map(&spec.name).expect("open map");

    // Replay stream: Zipf-ranked picks from the distinct set, with a
    // deterministic sprinkle of INSERTs when the cell mutates. Inserted
    // segments are tiny and far apart so they never change a cached
    // query's answer — the epoch bump alone is what invalidates.
    let pool = distinct_queries(&spec, p.distinct);
    let cdf = zipf_cdf(p.distinct, theta);
    let mut rng =
        StdRng::seed_from_u64(CONTINENT_SEED ^ 0xCAC4_E5EE ^ theta.to_bits() ^ (cache_bytes << 8));
    let mut uniform = UniformGen::new(spec.seed ^ 0x1257);
    let requests: Vec<(u32, Request)> = (0..p.queries)
        .map(|i| {
            let req = if mutation_pct > 0 && (i as u32) % 100 < mutation_pct {
                let a = uniform.next_point();
                let b = Point::new(a.x.saturating_add(3), a.y.saturating_add(2));
                Request::Insert(Segment::new(a, b))
            } else {
                let u = rng.next_f64();
                let rank = cdf.iter().position(|&c| u <= c).unwrap_or(p.distinct - 1);
                pool[rank].clone()
            };
            (map_id, req)
        })
        .collect();

    let report = run_closed_loop_routed(addr, &requests, p.connections).expect("closed loop");
    let stats = client.stats_v3().expect("stats");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");

    let rc = &stats
        .maps
        .iter()
        .find(|m| m.id == map_id)
        .expect("map stats")
        .reply_cache;
    let probes = rc.hits + rc.misses;
    Row {
        theta,
        cache_bytes,
        mutation_pct,
        hit_rate: if probes == 0 {
            0.0
        } else {
            rc.hits as f64 / probes as f64
        },
        throughput: report.throughput_qps(),
        p50_ms: ms(report.latency_at(0.50)),
        p99_ms: ms(report.latency_at(0.99)),
        disk_reads_per_query: report.totals.disk.reads as f64 / report.queries.max(1) as f64,
        hits: rc.hits,
        misses: rc.misses,
        insertions: rc.insertions,
        evictions: rc.evictions,
        invalidations: rc.invalidations,
        rejections: rc.rejections,
    }
}

fn main() {
    let mut queries = 4000usize;
    let mut connections = 4usize;
    let mut segments = 5000usize;
    let mut distinct = 512usize;
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--queries" => queries = val("--queries").parse().expect("--queries"),
            "--connections" => connections = val("--connections").parse().expect("--connections"),
            "--county-segments" => segments = val("--county-segments").parse().expect("segments"),
            "--distinct" => distinct = val("--distinct").parse().expect("--distinct"),
            "--json" => json = Some(PathBuf::from(val("--json"))),
            other => {
                eprintln!(
                    "unknown arg {other}\nusage: cache [--queries N] [--connections C] \
                     [--county-segments S] [--distinct D] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let p = Params {
        queries,
        connections,
        segments,
        distinct,
    };
    // Budget: one county's pages plus ample headroom for the largest
    // cache cell — this sweep measures the cache, not budget pressure
    // (the catalog tests cover eviction under overcommit).
    let per_map = county_index(&continent(1, segments, CONTINENT_SEED)[0]).size_bytes();
    let budget = per_map * 4 + 16 * 1024 * 1024;
    println!(
        "cache sweep: {queries} closed-loop queries/cell over {distinct} distinct, \
         {segments}-segment county ({per_map} B), budget {budget} B"
    );
    println!(
        "{:>6} {:>10} {:>5} {:>9} {:>12} {:>9} {:>9} {:>12} {:>10} {:>12} {:>10}",
        "theta",
        "cache B",
        "mut%",
        "hit rate",
        "qps",
        "p50 ms",
        "p99 ms",
        "reads/query",
        "evictions",
        "invalidated",
        "rejected"
    );
    let mut rows = Vec::new();
    for &theta in &THETAS {
        for &cache_bytes in &CACHE_BYTES {
            for &mutation_pct in &MUTATION_PCT {
                let row = run_cell(theta, cache_bytes, mutation_pct, budget, &p);
                println!(
                    "{:>6.1} {:>10} {:>5} {:>9.4} {:>12.1} {:>9.3} {:>9.3} {:>12.3} {:>10} {:>12} {:>10}",
                    row.theta,
                    row.cache_bytes,
                    row.mutation_pct,
                    row.hit_rate,
                    row.throughput,
                    row.p50_ms,
                    row.p99_ms,
                    row.disk_reads_per_query,
                    row.evictions,
                    row.invalidations,
                    row.rejections,
                );
                rows.push(row);
            }
        }
    }
    if let Some(path) = json {
        let doc = render(&p, budget, &rows);
        write_file(&path, &doc).expect("write json");
        println!("wrote {}", path.display());
    }
}
