//! Multi-map serving benchmark: one server, K county maps, one global
//! buffer budget.
//!
//! For each fleet size K in the sweep the binary builds a catalog of K
//! synthetic TIGER counties (deterministic `lsdb-tiger` specs, STR
//! bulk-packed R*-trees), binds an in-process v3 server, and drives an
//! open-loop routed workload whose per-request map choice follows a
//! Zipf(θ) popularity law — the canonical skew of a multi-tenant tile
//! service, where a few metro counties absorb most of the traffic.
//!
//! The buffer budget is fixed across the sweep at ~5.5× one county's
//! page footprint, so the small fleets fit comfortably while K ≥ 8
//! overcommits it and the cross-map second-chance evictor has to earn
//! its keep. The interesting columns are therefore the latency tail and
//! the disk reads per query as K crosses the budget line, with the
//! eviction count confirming the pressure is real.
//!
//! Usage: `multimap [--queries N] [--qps Q] [--connections C]
//!                  [--theta T] [--county-segments S] [--json PATH]`
//!
//! `--json` writes `BENCH_multimap.json`: run parameters plus one row
//! per fleet size. Counter columns are deterministic; only the wall/
//! latency fields vary run to run.

use lsdb_bench::json::write_file;
use lsdb_core::pointgen::{EndpointGen, UniformGen, WindowGen};
use lsdb_core::{IndexConfig, SpatialIndex};
use lsdb_rng::StdRng;
use lsdb_rtree::RTree;
use lsdb_server::{run_open_loop_routed, Catalog, Client, Request, Server, ServerConfig};
use lsdb_tiger::{continent, CountySpec};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Fleet sizes swept; the budget line sits between 4 and 8.
const FLEETS: [usize; 5] = [2, 4, 8, 16, 24];

/// Base seed for the synthetic continent (shared with the CLI default
/// so `lsdb serve --continent` hosts the same counties).
const CONTINENT_SEED: u64 = 0x7161;

/// Requests pre-generated per county, cycled as the Zipf sampler lands
/// on the map.
const STREAM_LEN: usize = 256;

/// Paper-style 1 KB pages with a pool *smaller* than one county's tree,
/// so the logical miss counters stay nonzero (and — because paper
/// counters are independent of physical shedding — provably identical
/// across fleet sizes: the isolation column of the sweep).
fn county_cfg() -> IndexConfig {
    IndexConfig {
        page_size: 1024,
        pool_pages: 48,
        ..Default::default()
    }
}

fn county_index(spec: &CountySpec) -> Box<dyn SpatialIndex> {
    let map = lsdb_tiger::generate(spec);
    Box::new(RTree::bulk_load(&map, county_cfg()))
}

/// Mixed per-county request stream: the paper's point queries plus
/// small windows, in a fixed rotation.
fn county_stream(spec: &CountySpec, len: usize) -> Vec<Request> {
    let map = lsdb_tiger::generate(spec);
    let mut endpoints = EndpointGen::new(&map, spec.seed ^ 0x5711);
    let mut uniform = UniformGen::new(spec.seed ^ 0x17E0);
    let mut windows = WindowGen::new(0.0005, spec.seed ^ 0x3A11);
    (0..len)
        .map(|i| match i % 4 {
            0 => Request::Incident(endpoints.next_endpoint().1),
            1 => Request::Nearest(uniform.next_point()),
            2 => Request::Knn {
                at: uniform.next_point(),
                k: (i % 3 + 1) as u32,
            },
            _ => Request::Window(windows.next_window()),
        })
        .collect()
}

/// Cumulative Zipf(θ) popularity over `k` maps.
fn zipf_cdf(k: usize, theta: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

/// Run parameters shared by every fleet in the sweep.
struct Params {
    queries: usize,
    qps: f64,
    connections: usize,
    theta: f64,
    segments: usize,
}

struct Row {
    maps: usize,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    disk_reads_per_query: f64,
    evictions: u64,
    budget_used: u64,
}

fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1_000_000.0).round() / 1000.0
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn render(p: &Params, budget: u64, per_map: u64, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"multimap\",\n");
    let _ = writeln!(out, "  \"county_segments\": {},", p.segments);
    let _ = writeln!(out, "  \"queries\": {},", p.queries);
    let _ = writeln!(out, "  \"target_qps\": {},", num(p.qps));
    let _ = writeln!(out, "  \"connections\": {},", p.connections);
    let _ = writeln!(out, "  \"zipf_theta\": {},", num(p.theta));
    let _ = writeln!(out, "  \"budget_bytes\": {budget},");
    let _ = writeln!(out, "  \"per_map_bytes\": {per_map},");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"maps\": {}, \"throughput_qps\": {}, \"p50_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {}, \"disk_reads_per_query\": {}, \
             \"evictions\": {}, \"budget_used\": {}}}",
            r.maps,
            num((r.throughput * 10.0).round() / 10.0),
            num(r.p50_ms),
            num(r.p99_ms),
            num(r.p999_ms),
            num((r.disk_reads_per_query * 1000.0).round() / 1000.0),
            r.evictions,
            r.budget_used,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_fleet(k: usize, budget: u64, p: &Params) -> Row {
    let specs = continent(k, p.segments, CONTINENT_SEED);
    let mut catalog = Catalog::new(budget, k);
    for spec in &specs {
        let spec = spec.clone();
        catalog.add_map(
            &spec.name.clone(),
            Box::new(move || Ok(county_index(&spec))),
        );
    }
    let config = ServerConfig {
        workers: 3,
        read_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let server = Server::bind_catalog("127.0.0.1:0", catalog, config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    // Open every map up front so build time stays out of the measured
    // window, then sample the routed request list from the Zipf law.
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.is_v3(), "catalog server must speak v3");
    let ids: Vec<u32> = specs
        .iter()
        .map(|spec| client.open_map(&spec.name).expect("open map").0)
        .collect();
    let streams: Vec<Vec<Request>> = specs.iter().map(|s| county_stream(s, STREAM_LEN)).collect();
    let cdf = zipf_cdf(k, p.theta);
    let mut rng = StdRng::seed_from_u64(CONTINENT_SEED ^ 0x05EE_D2A9 ^ k as u64);
    let mut cursors = vec![0usize; k];
    let requests: Vec<(u32, Request)> = (0..p.queries)
        .map(|_| {
            let u = rng.next_f64();
            let m = cdf.iter().position(|&c| u <= c).unwrap_or(k - 1);
            let req = streams[m][cursors[m] % STREAM_LEN].clone();
            cursors[m] += 1;
            (ids[m], req)
        })
        .collect();

    let report = run_open_loop_routed(addr, &requests, p.connections, p.qps).expect("open loop");
    let stats = client.stats_v3().expect("stats");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");

    Row {
        maps: k,
        throughput: report.throughput_qps(),
        p50_ms: ms(report.latency_at(0.50)),
        p99_ms: ms(report.latency_at(0.99)),
        p999_ms: ms(report.latency_at(0.999)),
        disk_reads_per_query: report.totals.disk.reads as f64 / report.queries.max(1) as f64,
        evictions: stats.maps.iter().map(|m| m.cache.evictions).sum(),
        budget_used: stats.budget.used,
    }
}

fn main() {
    let mut queries = 3000usize;
    let mut qps = 1500.0f64;
    let mut connections = 4usize;
    let mut theta = 1.0f64;
    let mut segments = 5000usize;
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--queries" => queries = val("--queries").parse().expect("--queries"),
            "--qps" => qps = val("--qps").parse().expect("--qps"),
            "--connections" => connections = val("--connections").parse().expect("--connections"),
            "--theta" => theta = val("--theta").parse().expect("--theta"),
            "--county-segments" => segments = val("--county-segments").parse().expect("segments"),
            "--json" => json = Some(PathBuf::from(val("--json"))),
            other => {
                eprintln!(
                    "unknown arg {other}\nusage: multimap [--queries N] [--qps Q] \
                     [--connections C] [--theta T] [--county-segments S] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let p = Params {
        queries,
        qps,
        connections,
        theta,
        segments,
    };
    // Budget: ~5.5 county footprints, fixed across the sweep.
    let per_map = county_index(&continent(1, segments, CONTINENT_SEED)[0]).size_bytes();
    let budget = per_map * 11 / 2;
    println!(
        "multimap sweep: {queries} queries/fleet @ {qps} qps, zipf θ={theta}, \
         {segments}-segment counties ({per_map} B each), budget {budget} B"
    );
    println!(
        "{:>5} {:>12} {:>9} {:>9} {:>9} {:>12} {:>10} {:>12}",
        "maps", "qps", "p50 ms", "p99 ms", "p99.9 ms", "reads/query", "evictions", "budget used"
    );
    let mut rows = Vec::new();
    for &k in &FLEETS {
        let row = run_fleet(k, budget, &p);
        println!(
            "{:>5} {:>12.1} {:>9.3} {:>9.3} {:>9.3} {:>12.3} {:>10} {:>12}",
            row.maps,
            row.throughput,
            row.p50_ms,
            row.p99_ms,
            row.p999_ms,
            row.disk_reads_per_query,
            row.evictions,
            row.budget_used,
        );
        rows.push(row);
    }
    if let Some(path) = json {
        let doc = render(&p, budget, per_map, &rows);
        write_file(&path, &doc).expect("write json");
        println!("wrote {}", path.display());
    }
}
