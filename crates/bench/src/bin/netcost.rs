//! Over-the-wire query cost: what the TCP service layer adds on top of the
//! in-process engine.
//!
//! For each paper structure × workload, the same query stream runs twice —
//! once in-process through [`QueryWorkbench::run_threaded`], once through
//! `lsdb-server`'s closed-loop client against a server on a loopback
//! ephemeral port (connections = `--threads`). The wire run must reproduce
//! the in-process counters exactly (the protocol ships every query's
//! `QueryStats` back in the reply); what differs is throughput and
//! latency, which is the point of the table.
//!
//! Usage: `cargo run --release -p lsdb-bench --bin netcost -- [--queries N] [--threads N]`

use lsdb_bench::report::render_table;
use lsdb_bench::wire::requests_for;
use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind, WorkloadConfig};
use lsdb_core::IndexConfig;
use lsdb_server::{run_closed_loop, Client, Server, ServerConfig};
use std::time::{Duration, Instant};

fn main() {
    let cfg = IndexConfig::default();
    let wcfg = WorkloadConfig::from_args();
    let map = wcfg.county("Charles");
    println!(
        "Network cost: Charles county ({} segments), {} queries per type, {} connection(s)\n",
        map.len(),
        wcfg.queries,
        wcfg.threads
    );
    let wb = QueryWorkbench::new(&map, wcfg.queries, 0xC4A5);

    let mut rows = vec![vec![
        "structure".to_string(),
        "query".to_string(),
        "in-proc qps".to_string(),
        "wire qps".to_string(),
        "p50 us".to_string(),
        "p95 us".to_string(),
        "p99 us".to_string(),
        "counters".to_string(),
    ]];

    for kind in IndexKind::paper_three() {
        // Two identical builds: the server consumes one, the in-process
        // reference keeps the other.
        let served = build_index(kind, &map, cfg);
        let local = build_index(kind, &map, cfg);

        let server = Server::bind(
            "127.0.0.1:0",
            served,
            ServerConfig {
                workers: wcfg.threads,
                read_timeout: Duration::from_millis(100),
                ..Default::default()
            },
        )
        .expect("bind loopback server");
        let addr = server.local_addr().expect("server address");
        let handle = std::thread::spawn(move || server.run().expect("server run"));

        for w in Workload::ALL {
            let requests = requests_for(&wb, w);
            let start = Instant::now();
            let in_proc = wb.run_threaded(w, local.as_ref(), wcfg.threads);
            let in_proc_secs = start.elapsed().as_secs_f64();
            let report = run_closed_loop(addr, &requests, wcfg.threads).expect("closed-loop run");

            let n = report.queries as f64;
            let counters_match = report.queries == in_proc.queries
                && report.totals.disk.total() as f64 / n == in_proc.disk_accesses
                && report.totals.seg_comps as f64 / n == in_proc.seg_comps
                && report.totals.bbox_comps as f64 / n == in_proc.bbox_comps;

            rows.push(vec![
                kind.label(),
                w.label().to_string(),
                format!("{:.0}", in_proc.queries as f64 / in_proc_secs),
                format!("{:.0}", report.throughput_qps()),
                format!("{:.0}", report.p50().as_secs_f64() * 1e6),
                format!("{:.0}", report.p95().as_secs_f64() * 1e6),
                format!("{:.0}", report.p99().as_secs_f64() * 1e6),
                if counters_match {
                    "exact".into()
                } else {
                    "MISMATCH".into()
                },
            ]);
            if !counters_match {
                eprintln!(
                    "warning: wire counters diverge from in-process for {} / {}",
                    kind.label(),
                    w.label()
                );
            }
        }

        Client::connect(addr)
            .and_then(|mut c| c.shutdown())
            .expect("shutdown server");
        handle.join().expect("join server");
    }

    println!("{}", render_table(&rows));
    println!(
        "wire = framed request/reply over loopback TCP, closed loop, {} connection(s);",
        wcfg.threads
    );
    println!("counters 'exact' = per-query disk/seg/bbox totals identical to the in-process run.");
}
