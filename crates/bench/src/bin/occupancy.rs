//! Reproduce the paper's **§7 occupancy note** and run the PMR threshold
//! ablation.
//!
//! "Using our implementations of 1K byte pages, we found that the average
//! number of line segments in an R\*-tree page was 36 while it was 32 in an
//! R+-tree page. The average number of line segments in a bucket with a
//! splitting threshold value of x is usually .5x. This would mean that a
//! PMR quadtree splitting threshold value of approximately 64 may lead to
//! comparable results."
//!
//! Usage: `cargo run --release -p lsdb-bench --bin occupancy`

use lsdb_bench::report::{fmt, render_table};
use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::WorkloadConfig;
use lsdb_core::{IndexConfig, SpatialIndex};
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use lsdb_rplus::RPlusTree;
use lsdb_rtree::{RTree, RTreeKind};

fn main() {
    let cfg = IndexConfig::default();
    let wcfg = WorkloadConfig::from_args();
    let map = wcfg.county("Charles");
    println!(
        "S7 occupancy audit on {} ({} segments)\n",
        map.name,
        map.len()
    );

    let mut rstar = RTree::build(&map, cfg, RTreeKind::RStar);
    let mut rplus = RPlusTree::build(&map, cfg);
    let n = wcfg.queries.min(500);
    println!(
        "average leaf occupancy (1 KB pages, M = {}):",
        rstar.m_max()
    );
    println!(
        "  R*-tree : {:.1} segments/page (paper: 36)",
        rstar.avg_leaf_occupancy()
    );
    println!(
        "  R+-tree : {:.1} segments/page (paper: 32)",
        rplus.avg_leaf_occupancy()
    );

    println!("\nPMR splitting-threshold sweep:");
    let wb = QueryWorkbench::new(&map, n, 0x0CCA);
    let mut rows = vec![vec![
        "threshold".to_string(),
        "avg bucket occupancy".to_string(),
        "size (KB)".to_string(),
        "range disk".to_string(),
        "nearest disk".to_string(),
        "nearest seg comps".to_string(),
    ]];
    for t in [2usize, 4, 8, 16, 32, 64] {
        let mut pmr = PmrQuadtree::build(
            &map,
            PmrConfig {
                threshold: t,
                index: cfg,
                ..Default::default()
            },
        );
        let occupancy = pmr.avg_bucket_occupancy();
        let size = pmr.size_bytes() as f64 / 1024.0;
        let range = wb.run(Workload::Range, &pmr);
        let near = wb.run(Workload::NearestTwoStage, &pmr);
        rows.push(vec![
            t.to_string(),
            format!("{occupancy:.1}"),
            fmt(size),
            fmt(range.disk_accesses),
            fmt(near.disk_accesses),
            fmt(near.seg_comps),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("paper shape: occupancy ~ 0.5 x threshold; storage falls and per-query");
    println!("work rises as the threshold grows.");
}
