//! Bridge from the paper's workloads to the wire protocol: turn a
//! [`QueryWorkbench`] stream into the [`Request`] sequence a remote client
//! would issue, so in-process and over-the-wire runs execute the *same*
//! queries with the *same* parameters (including the polygon step cap) and
//! their counters can be compared exactly.

use crate::workloads::{QueryWorkbench, Workload};
use lsdb_server::Request;

/// The request stream for one workload, in the workbench's query order.
pub fn requests_for(wb: &QueryWorkbench, workload: Workload) -> Vec<Request> {
    let steps = wb.max_polygon_steps as u32;
    match workload {
        Workload::Point1 => wb
            .endpoints
            .iter()
            .map(|&(_, p)| Request::Incident(p))
            .collect(),
        Workload::Point2 => wb
            .endpoints
            .iter()
            .map(|&(id, p)| Request::Second { id, at: p })
            .collect(),
        Workload::NearestTwoStage => wb
            .two_stage_points
            .iter()
            .map(|&p| Request::Nearest(p))
            .collect(),
        Workload::NearestOneStage => wb
            .uniform_points
            .iter()
            .map(|&p| Request::Nearest(p))
            .collect(),
        Workload::PolygonTwoStage => wb
            .two_stage_points
            .iter()
            .map(|&p| Request::Polygon {
                at: p,
                max_steps: steps,
            })
            .collect(),
        Workload::PolygonOneStage => wb
            .uniform_points
            .iter()
            .map(|&p| Request::Polygon {
                at: p,
                max_steps: steps,
            })
            .collect(),
        Workload::Range => wb.windows.iter().map(|&w| Request::Window(w)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::IndexConfig;

    #[test]
    fn wire_streams_reproduce_in_process_workload_metrics() {
        // The whole point of the bridge: driving the server with
        // requests_for(...) must yield the totals the in-process run
        // computes. Exercised end-to-end: workbench -> requests ->
        // server -> summed reply counters == run().
        let map = lsdb_tiger::generate(&lsdb_tiger::CountySpec::new(
            "wire-test",
            lsdb_tiger::CountyClass::Urban,
            700,
            0x11CE,
        ));
        let wb = QueryWorkbench::new(&map, 12, 7);
        let index = crate::build_index(crate::IndexKind::Pmr, &map, IndexConfig::default());

        let server = lsdb_server::Server::bind(
            "127.0.0.1:0",
            index,
            lsdb_server::ServerConfig {
                read_timeout: std::time::Duration::from_millis(100),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // A second identical index for the in-process reference.
        let reference = crate::build_index(crate::IndexKind::Pmr, &map, IndexConfig::default());
        for w in Workload::ALL {
            let requests = requests_for(&wb, w);
            assert_eq!(requests.len(), 12, "{w:?}");
            let report = lsdb_server::run_closed_loop(addr, &requests, 3).unwrap();
            let local = wb.run(w, reference.as_ref());
            let n = report.queries as f64;
            assert_eq!(report.queries, local.queries, "{w:?}");
            assert_eq!(
                report.totals.disk.total() as f64 / n,
                local.disk_accesses,
                "{w:?}"
            );
            assert_eq!(report.totals.seg_comps as f64 / n, local.seg_comps, "{w:?}");
            assert_eq!(
                report.totals.bbox_comps as f64 / n,
                local.bbox_comps,
                "{w:?}"
            );
            assert_eq!(report.result_items as f64 / n, local.avg_result, "{w:?}");
        }

        lsdb_server::Client::connect(addr)
            .unwrap()
            .shutdown()
            .unwrap();
        handle.join().unwrap();
    }
}
