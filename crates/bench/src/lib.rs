//! Benchmark harness reproducing every table and figure of the paper.
//!
//! Each experiment is a binary (see `src/bin/`):
//!
//! | target      | reproduces |
//! |-------------|------------|
//! | `table1`    | Table 1 — build statistics (size, disk accesses, CPU seconds) |
//! | `table2`    | Table 2 — per-query metrics for Charles county |
//! | `fig6`      | Figure 6 — build disk accesses by page size × buffer size |
//! | `figures`   | Figures 7-9 — normalized ranges over the six counties |
//! | `occupancy` | §7 — page/bucket occupancy audit + PMR threshold sweep |
//!
//! Shared infrastructure lives here: index construction behind one enum,
//! the five query workloads with metric accumulation, and plain-text table
//! rendering. Every binary honours two environment variables:
//!
//! * `LSDB_SCALE` — scales the county segment counts (default 1.0); the
//!   smoke-test suite runs the full pipeline at 0.02.
//! * `LSDB_QUERIES` — queries per type (default 1000, as in the paper).

pub mod report;
pub mod workloads;

use lsdb_core::{IndexConfig, PolygonalMap, SpatialIndex};
use lsdb_grid::UniformGrid;
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use lsdb_rplus::RPlusTree;
use lsdb_rtree::{RTree, RTreeKind};
use lsdb_tiger::CountySpec;
use std::path::PathBuf;
use std::time::Instant;

/// Which index structure to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    RStar,
    RPlus,
    Pmr,
    /// PMR quadtree with a non-default splitting threshold (ablation).
    PmrThreshold(usize),
    /// Guttman baselines (ablation).
    RQuadratic,
    RLinear,
    /// Uniform grid baseline (ablation), cells per side.
    Grid(i32),
    /// Representative-point 4-d grid (the paper's §2 counter-example),
    /// cells per axis.
    Repr(i32),
}

impl IndexKind {
    /// The paper's three structures, in its reporting order.
    pub fn paper_three() -> [IndexKind; 3] {
        [IndexKind::RStar, IndexKind::RPlus, IndexKind::Pmr]
    }

    pub fn label(self) -> String {
        match self {
            IndexKind::RStar => "R*".into(),
            IndexKind::RPlus => "R+".into(),
            IndexKind::Pmr => "PMR".into(),
            IndexKind::PmrThreshold(t) => format!("PMR(t={t})"),
            IndexKind::RQuadratic => "R(quad)".into(),
            IndexKind::RLinear => "R(lin)".into(),
            IndexKind::Grid(g) => format!("grid({g})"),
            IndexKind::Repr(g) => format!("repr({g}^4)"),
        }
    }
}

/// Build the chosen index over `map` with the given page configuration.
pub fn build_index(kind: IndexKind, map: &PolygonalMap, cfg: IndexConfig) -> Box<dyn SpatialIndex> {
    match kind {
        IndexKind::RStar => Box::new(RTree::build(map, cfg, RTreeKind::RStar)),
        IndexKind::RQuadratic => Box::new(RTree::build(map, cfg, RTreeKind::Quadratic)),
        IndexKind::RLinear => Box::new(RTree::build(map, cfg, RTreeKind::Linear)),
        IndexKind::RPlus => Box::new(RPlusTree::build(map, cfg)),
        IndexKind::Pmr => Box::new(PmrQuadtree::build(map, PmrConfig { index: cfg, ..Default::default() })),
        IndexKind::PmrThreshold(t) => Box::new(PmrQuadtree::build(
            map,
            PmrConfig { threshold: t, index: cfg, ..Default::default() },
        )),
        IndexKind::Grid(g) => Box::new(UniformGrid::build(map, cfg, g)),
        IndexKind::Repr(g) => Box::new(lsdb_repr::ReprGrid::build(map, cfg, g)),
    }
}

/// Table 1 measurements for one (map, structure) pair.
#[derive(Clone, Debug)]
pub struct BuildReport {
    pub kind: IndexKind,
    pub map_name: String,
    pub segments: usize,
    pub size_kbytes: f64,
    /// Index-page reads + writes during the build (flush included: the
    /// structure is disk-resident when the build is done).
    pub disk_accesses: u64,
    pub cpu_seconds: f64,
}

/// Build an index while measuring Table 1's three quantities.
pub fn measure_build(kind: IndexKind, map: &PolygonalMap, cfg: IndexConfig) -> (Box<dyn SpatialIndex>, BuildReport) {
    let start = Instant::now();
    let mut index = build_index(kind, map, cfg);
    let cpu_seconds = start.elapsed().as_secs_f64();
    index.clear_cache(); // flush dirty pages: the build's final writes
    let stats = index.stats();
    let report = BuildReport {
        kind,
        map_name: map.name.clone(),
        segments: map.len(),
        size_kbytes: index.size_bytes() as f64 / 1024.0,
        disk_accesses: stats.disk.total(),
        cpu_seconds,
    };
    index.reset_stats();
    (index, report)
}

/// Scale factor for the county maps (`LSDB_SCALE`, default 1.0).
pub fn scale() -> f64 {
    std::env::var("LSDB_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Queries per type (`LSDB_QUERIES`, default 1000 as in the paper).
pub fn queries_per_type() -> usize {
    std::env::var("LSDB_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

/// Map cache directory (`LSDB_MAP_CACHE`, default `target/lsdb-maps`).
pub fn map_cache_dir() -> PathBuf {
    std::env::var("LSDB_MAP_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/lsdb-maps"))
}

/// The six counties at the configured scale, generated (or loaded from the
/// cache).
pub fn counties_at_scale() -> Vec<PolygonalMap> {
    let s = scale();
    lsdb_tiger::the_six_counties()
        .into_iter()
        .map(|spec| scaled_county(spec, s))
        .collect()
}

/// One county at the configured scale.
pub fn county_at_scale(name: &str) -> PolygonalMap {
    let spec = lsdb_tiger::county(name).unwrap_or_else(|| panic!("unknown county {name}"));
    scaled_county(spec, scale())
}

fn scaled_county(spec: CountySpec, s: f64) -> PolygonalMap {
    let target = ((spec.target_segments as f64 * s).round() as usize).max(200);
    let spec = spec.with_target(target);
    lsdb_tiger::io::load_or_generate(&spec, &map_cache_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_map() -> PolygonalMap {
        let spec = lsdb_tiger::CountySpec::new(
            "bench-test",
            lsdb_tiger::CountyClass::Urban,
            600,
            99,
        );
        lsdb_tiger::generate(&spec)
    }

    #[test]
    fn build_index_all_kinds() {
        let map = tiny_map();
        let cfg = IndexConfig { page_size: 512, pool_pages: 16 };
        for kind in [
            IndexKind::RStar,
            IndexKind::RPlus,
            IndexKind::Pmr,
            IndexKind::PmrThreshold(8),
            IndexKind::RQuadratic,
            IndexKind::RLinear,
            IndexKind::Grid(16),
            IndexKind::Repr(8),
        ] {
            let idx = build_index(kind, &map, cfg);
            assert_eq!(idx.len(), map.len(), "{kind:?}");
        }
    }

    #[test]
    fn measure_build_reports_sane_numbers() {
        let map = tiny_map();
        let cfg = IndexConfig::default();
        let (idx, rep) = measure_build(IndexKind::Pmr, &map, cfg);
        assert_eq!(rep.segments, map.len());
        assert!(rep.size_kbytes > 1.0);
        assert!(rep.disk_accesses > 0, "a 16-page pool cannot hold the build");
        assert!(rep.cpu_seconds > 0.0);
        // Stats were reset after the build measurement.
        assert_eq!(idx.stats().disk.total(), 0);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(IndexKind::RStar.label(), "R*");
        assert_eq!(IndexKind::PmrThreshold(64).label(), "PMR(t=64)");
        assert_eq!(IndexKind::Grid(32).label(), "grid(32)");
    }
}
