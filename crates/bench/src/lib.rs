//! Benchmark harness reproducing every table and figure of the paper.
//!
//! Each experiment is a binary (see `src/bin/`):
//!
//! | target      | reproduces |
//! |-------------|------------|
//! | `table1`    | Table 1 — build statistics (size, disk accesses, CPU seconds) |
//! | `table2`    | Table 2 — per-query metrics for Charles county |
//! | `fig6`      | Figure 6 — build disk accesses by page size × buffer size |
//! | `figures`   | Figures 7-9 — normalized ranges over the six counties |
//! | `occupancy` | §7 — page/bucket occupancy audit + PMR threshold sweep |
//! | `netcost`   | in-process vs over-the-wire query cost (lsdb-server) |
//!
//! Shared infrastructure lives here: index construction behind one enum,
//! the five query workloads with metric accumulation, plain-text table
//! rendering, and [`WorkloadConfig`] — the typed run configuration every
//! binary builds with [`WorkloadConfig::from_args`]. Flags (`--scale`,
//! `--queries`, `--threads`, `--map-cache`) override the environment
//! (`LSDB_SCALE`, `LSDB_QUERIES`, `LSDB_THREADS`, `LSDB_MAP_CACHE`), which
//! overrides the defaults (1.0 / 1000 / 1 / `target/lsdb-maps`).

pub mod json;
pub mod report;
pub mod wire;
pub mod workloads;

use lsdb_core::{IndexConfig, PolygonalMap, SpatialIndex};
use lsdb_grid::UniformGrid;
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use lsdb_rplus::RPlusTree;
use lsdb_rtree::{RTree, RTreeKind};
use lsdb_tiger::CountySpec;
use std::path::PathBuf;
use std::time::Instant;

/// Which index structure to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    RStar,
    RPlus,
    Pmr,
    /// PMR quadtree with a non-default splitting threshold (ablation).
    PmrThreshold(usize),
    /// Guttman baselines (ablation).
    RQuadratic,
    RLinear,
    /// Uniform grid baseline (ablation), cells per side.
    Grid(i32),
    /// Representative-point 4-d grid (the paper's §2 counter-example),
    /// cells per axis.
    Repr(i32),
}

impl IndexKind {
    /// The paper's three structures, in its reporting order.
    pub fn paper_three() -> [IndexKind; 3] {
        [IndexKind::RStar, IndexKind::RPlus, IndexKind::Pmr]
    }

    pub fn label(self) -> String {
        match self {
            IndexKind::RStar => "R*".into(),
            IndexKind::RPlus => "R+".into(),
            IndexKind::Pmr => "PMR".into(),
            IndexKind::PmrThreshold(t) => format!("PMR(t={t})"),
            IndexKind::RQuadratic => "R(quad)".into(),
            IndexKind::RLinear => "R(lin)".into(),
            IndexKind::Grid(g) => format!("grid({g})"),
            IndexKind::Repr(g) => format!("repr({g}^4)"),
        }
    }
}

/// Build the chosen index over `map` with the given page configuration.
pub fn build_index(kind: IndexKind, map: &PolygonalMap, cfg: IndexConfig) -> Box<dyn SpatialIndex> {
    match kind {
        IndexKind::RStar => Box::new(RTree::build(map, cfg, RTreeKind::RStar)),
        IndexKind::RQuadratic => Box::new(RTree::build(map, cfg, RTreeKind::Quadratic)),
        IndexKind::RLinear => Box::new(RTree::build(map, cfg, RTreeKind::Linear)),
        IndexKind::RPlus => Box::new(RPlusTree::build(map, cfg)),
        IndexKind::Pmr => Box::new(PmrQuadtree::build(
            map,
            PmrConfig {
                index: cfg,
                ..Default::default()
            },
        )),
        IndexKind::PmrThreshold(t) => Box::new(PmrQuadtree::build(
            map,
            PmrConfig {
                threshold: t,
                index: cfg,
                ..Default::default()
            },
        )),
        IndexKind::Grid(g) => Box::new(UniformGrid::build(map, cfg, g)),
        IndexKind::Repr(g) => Box::new(lsdb_repr::ReprGrid::build(map, cfg, g)),
    }
}

/// Table 1 measurements for one (map, structure) pair.
#[derive(Clone, Debug)]
pub struct BuildReport {
    pub kind: IndexKind,
    pub map_name: String,
    pub segments: usize,
    pub size_kbytes: f64,
    /// Index-page reads + writes during the build (flush included: the
    /// structure is disk-resident when the build is done).
    pub disk_accesses: u64,
    pub cpu_seconds: f64,
}

/// Build an index while measuring Table 1's three quantities.
pub fn measure_build(
    kind: IndexKind,
    map: &PolygonalMap,
    cfg: IndexConfig,
) -> (Box<dyn SpatialIndex>, BuildReport) {
    let start = Instant::now();
    let mut index = build_index(kind, map, cfg);
    let cpu_seconds = start.elapsed().as_secs_f64();
    index.clear_cache(); // flush dirty pages: the build's final writes
    let stats = index.stats();
    let report = BuildReport {
        kind,
        map_name: map.name.clone(),
        segments: map.len(),
        size_kbytes: index.size_bytes() as f64 / 1024.0,
        disk_accesses: stats.disk.total(),
        cpu_seconds,
    };
    index.reset_stats();
    (index, report)
}

/// Typed run configuration for the experiment binaries, replacing the old
/// loose `LSDB_*` environment lookups. Precedence, lowest to highest:
/// defaults, environment ([`WorkloadConfig::from_env`]), CLI flags
/// ([`WorkloadConfig::from_args`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Scale factor for the county segment counts (default 1.0; the smoke
    /// suite runs the full pipeline around 0.02).
    pub scale: f64,
    /// Queries per workload type (default 1000, as in the paper).
    pub queries: usize,
    /// Worker threads for the query batches (default 1 — the paper's
    /// sequential runs; counters are identical at any thread count).
    pub threads: usize,
    /// Directory for cached generated maps.
    pub map_cache: PathBuf,
    /// If set, binaries additionally dump their measurements as JSON to
    /// this path (machine-readable trajectory; see [`crate::json`]).
    pub json: Option<PathBuf>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            scale: 1.0,
            queries: 1000,
            threads: 1,
            map_cache: PathBuf::from("target/lsdb-maps"),
            json: None,
        }
    }
}

impl WorkloadConfig {
    pub const USAGE: &'static str = "options:
  --scale <f64>       county size multiplier        (env LSDB_SCALE, default 1.0)
  --queries <n>       queries per workload type     (env LSDB_QUERIES, default 1000)
  --threads <n>       query worker threads          (env LSDB_THREADS, default 1)
  --map-cache <dir>   cached generated maps         (env LSDB_MAP_CACHE, default target/lsdb-maps)
  --json <path>       also write results as JSON    (env LSDB_JSON, default off)
  -h, --help          print this help";

    pub fn new() -> Self {
        Self::default()
    }

    /// Defaults overridden by whichever `LSDB_*` variables parse cleanly.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = env_parse("LSDB_SCALE") {
            cfg.scale = v;
        }
        if let Some(v) = env_parse("LSDB_QUERIES") {
            cfg.queries = v;
        }
        if let Some(v) = env_parse("LSDB_THREADS") {
            cfg.threads = v;
        }
        if let Ok(v) = std::env::var("LSDB_MAP_CACHE") {
            cfg.map_cache = PathBuf::from(v);
        }
        if let Ok(v) = std::env::var("LSDB_JSON") {
            cfg.json = Some(PathBuf::from(v));
        }
        cfg
    }

    /// Environment config overridden by the process's CLI flags. Prints
    /// usage and exits on `--help` or a malformed flag — this is the one
    /// constructor meant for `main`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::USAGE);
            std::process::exit(0);
        }
        match Self::from_env().try_apply_args(args) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}\n{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Apply `--flag value` / `--flag=value` pairs on top of `self`.
    pub fn try_apply_args(
        mut self,
        args: impl IntoIterator<Item = String>,
    ) -> Result<Self, String> {
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let mut value = || {
                inline
                    .clone()
                    .or_else(|| it.next())
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--scale" => self.scale = parse_flag(&value()?, "--scale")?,
                "--queries" => self.queries = parse_flag(&value()?, "--queries")?,
                "--threads" => {
                    self.threads = parse_flag(&value()?, "--threads")?;
                    if self.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--map-cache" => self.map_cache = PathBuf::from(value()?),
                "--json" => self.json = Some(PathBuf::from(value()?)),
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(self)
    }

    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_map_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.map_cache = dir.into();
        self
    }

    pub fn with_json(mut self, path: impl Into<PathBuf>) -> Self {
        self.json = Some(path.into());
        self
    }

    /// The six counties at the configured scale, generated (or loaded from
    /// the cache).
    pub fn counties(&self) -> Vec<PolygonalMap> {
        lsdb_tiger::the_six_counties()
            .into_iter()
            .map(|spec| self.scaled_county(spec))
            .collect()
    }

    /// One county at the configured scale.
    pub fn county(&self, name: &str) -> PolygonalMap {
        let spec = lsdb_tiger::county(name).unwrap_or_else(|| panic!("unknown county {name}"));
        self.scaled_county(spec)
    }

    fn scaled_county(&self, spec: CountySpec) -> PolygonalMap {
        let target = ((spec.target_segments as f64 * self.scale).round() as usize).max(200);
        let spec = spec.with_target(target);
        lsdb_tiger::io::load_or_generate(&spec, &self.map_cache)
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok().and_then(|s| s.parse().ok())
}

fn parse_flag<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("invalid value '{v}' for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_map() -> PolygonalMap {
        let spec =
            lsdb_tiger::CountySpec::new("bench-test", lsdb_tiger::CountyClass::Urban, 600, 99);
        lsdb_tiger::generate(&spec)
    }

    #[test]
    fn build_index_all_kinds() {
        let map = tiny_map();
        let cfg = IndexConfig {
            page_size: 512,
            pool_pages: 16,
            ..Default::default()
        };
        for kind in [
            IndexKind::RStar,
            IndexKind::RPlus,
            IndexKind::Pmr,
            IndexKind::PmrThreshold(8),
            IndexKind::RQuadratic,
            IndexKind::RLinear,
            IndexKind::Grid(16),
            IndexKind::Repr(8),
        ] {
            let idx = build_index(kind, &map, cfg);
            assert_eq!(idx.len(), map.len(), "{kind:?}");
        }
    }

    #[test]
    fn measure_build_reports_sane_numbers() {
        let map = tiny_map();
        let cfg = IndexConfig::default();
        let (idx, rep) = measure_build(IndexKind::Pmr, &map, cfg);
        assert_eq!(rep.segments, map.len());
        assert!(rep.size_kbytes > 1.0);
        assert!(
            rep.disk_accesses > 0,
            "a 16-page pool cannot hold the build"
        );
        assert!(rep.cpu_seconds > 0.0);
        // Stats were reset after the build measurement.
        assert_eq!(idx.stats().disk.total(), 0);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(IndexKind::RStar.label(), "R*");
        assert_eq!(IndexKind::PmrThreshold(64).label(), "PMR(t=64)");
        assert_eq!(IndexKind::Grid(32).label(), "grid(32)");
    }

    #[test]
    fn workload_config_builder_and_defaults() {
        let cfg = WorkloadConfig::new();
        assert_eq!(cfg.scale, 1.0);
        assert_eq!(cfg.queries, 1000);
        assert_eq!(cfg.threads, 1);
        let cfg = cfg
            .with_scale(0.25)
            .with_queries(50)
            .with_threads(4)
            .with_map_cache("/tmp/maps");
        assert_eq!(cfg.scale, 0.25);
        assert_eq!(cfg.queries, 50);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.map_cache, PathBuf::from("/tmp/maps"));
        assert_eq!(WorkloadConfig::new().with_threads(0).threads, 1);
    }

    #[test]
    fn workload_config_parses_cli_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let cfg = WorkloadConfig::new()
            .try_apply_args(args(&["--scale", "0.1", "--queries=200", "--threads", "8"]))
            .unwrap();
        assert_eq!(cfg.scale, 0.1);
        assert_eq!(cfg.queries, 200);
        assert_eq!(cfg.threads, 8);
        let cfg = WorkloadConfig::new()
            .try_apply_args(args(&["--map-cache=/tmp/x"]))
            .unwrap();
        assert_eq!(cfg.map_cache, PathBuf::from("/tmp/x"));
        assert_eq!(cfg.json, None);
        let cfg = WorkloadConfig::new()
            .try_apply_args(args(&["--json", "/tmp/out.json"]))
            .unwrap();
        assert_eq!(cfg.json, Some(PathBuf::from("/tmp/out.json")));
        assert!(WorkloadConfig::new()
            .try_apply_args(args(&["--queries"]))
            .is_err());
        assert!(WorkloadConfig::new()
            .try_apply_args(args(&["--queries", "lots"]))
            .is_err());
        assert!(WorkloadConfig::new()
            .try_apply_args(args(&["--threads", "0"]))
            .is_err());
        assert!(WorkloadConfig::new()
            .try_apply_args(args(&["--frobnicate"]))
            .is_err());
    }

    #[test]
    fn env_beats_defaults_and_flags_beat_env() {
        // try_apply_args layers on top of whatever base config it is given,
        // which is how from_args implements flags-over-env precedence.
        let base = WorkloadConfig::new().with_queries(250).with_threads(2);
        let cfg = base
            .try_apply_args(vec!["--queries".to_string(), "40".to_string()])
            .unwrap();
        assert_eq!(cfg.queries, 40);
        assert_eq!(cfg.threads, 2, "untouched fields keep the base value");
    }
}
