//! Smoke tests for the experiment harness: every table/figure pipeline
//! runs end-to-end at a reduced scale and its headline *shape* properties
//! hold. (The full-scale numbers live in EXPERIMENTS.md and are produced
//! by the `lsdb-bench` binaries.)

use lsdb::core::IndexConfig;
use lsdb::tiger::{generate, CountyClass, CountySpec};
use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, measure_build, IndexKind};

fn county(target: usize) -> lsdb::core::PolygonalMap {
    generate(&CountySpec::new(
        "smoke",
        CountyClass::Rural { meander: 24 },
        target,
        4242,
    ))
}

#[test]
fn table1_pipeline_shape() {
    let map = county(4000);
    let cfg = IndexConfig::default();
    let reports: Vec<_> = IndexKind::paper_three()
        .iter()
        .map(|&k| measure_build(k, &map, cfg).1)
        .collect();
    let (rstar, rplus, pmr) = (&reports[0], &reports[1], &reports[2]);
    // Sizes: R+ uses more space than R* (paper: +26-43%).
    assert!(
        rplus.size_kbytes > rstar.size_kbytes,
        "R+ {:.0}KB vs R* {:.0}KB",
        rplus.size_kbytes,
        rstar.size_kbytes
    );
    // Build disk activity exists for all: a 16-page pool cannot hold a
    // 4000-segment build, so at minimum every page beyond the pool's 16
    // frames must have been written out (1 KB pages, so size in KB is the
    // page count).
    for r in &reports {
        assert!(
            r.disk_accesses as f64 > r.size_kbytes - 16.0,
            "{:?}: {} accesses for {:.0}KB",
            r.kind,
            r.disk_accesses,
            r.size_kbytes
        );
        assert!(r.cpu_seconds > 0.0);
    }
    let _ = pmr;
}

#[test]
fn fig6_pipeline_shape() {
    let map = county(3000);
    // Disk accesses decrease as the pool grows (fixed page size)...
    let mut prev = u64::MAX;
    for pool in [4usize, 16, 64] {
        let cfg = IndexConfig {
            page_size: 1024,
            pool_pages: pool,
            ..Default::default()
        };
        let (_, rep) = measure_build(IndexKind::Pmr, &map, cfg);
        assert!(
            rep.disk_accesses <= prev,
            "pool {pool}: {} > previous {prev}",
            rep.disk_accesses
        );
        prev = rep.disk_accesses;
    }
    // ... and as the page size grows (fixed pool).
    let mut prev = u64::MAX;
    for page in [512usize, 2048, 8192] {
        let cfg = IndexConfig {
            page_size: page,
            pool_pages: 16,
            ..Default::default()
        };
        let (_, rep) = measure_build(IndexKind::Pmr, &map, cfg);
        assert!(
            rep.disk_accesses <= prev,
            "page {page}: {} > previous {prev}",
            rep.disk_accesses
        );
        prev = rep.disk_accesses;
    }
    // PMR < R+ at the paper's configuration (8-byte vs 20-byte tuples).
    let cfg = IndexConfig::default();
    let (_, pmr) = measure_build(IndexKind::Pmr, &map, cfg);
    let (_, rplus) = measure_build(IndexKind::RPlus, &map, cfg);
    assert!(
        pmr.disk_accesses < rplus.disk_accesses,
        "PMR {} vs R+ {}",
        pmr.disk_accesses,
        rplus.disk_accesses
    );
}

#[test]
fn table2_pipeline_shape() {
    let map = county(4000);
    let cfg = IndexConfig::default();
    let wb = QueryWorkbench::new(&map, 120, 0x51);
    let mut per = Vec::new();
    for kind in IndexKind::paper_three() {
        let idx = build_index(kind, &map, cfg);
        per.push(
            Workload::ALL
                .iter()
                .map(|&w| wb.run(w, idx.as_ref()))
                .collect::<Vec<_>>(),
        );
    }
    let (rstar, rplus, pmr) = (&per[0], &per[1], &per[2]);
    // PMR point queries cost exactly one bucket computation on average.
    assert!(
        (pmr[0].bbox_comps - 1.0).abs() < 1e-9,
        "{}",
        pmr[0].bbox_comps
    );
    // R-tree bbox comps dwarf PMR bucket comps on every workload (the
    // reason the paper couldn't put them on one plot).
    for wi in 0..Workload::ALL.len() {
        assert!(
            rstar[wi].bbox_comps > 3.0 * pmr[wi].bbox_comps,
            "workload {wi}: R* {} vs PMR {}",
            rstar[wi].bbox_comps,
            pmr[wi].bbox_comps
        );
    }
    // Nearest-line: PMR needs the fewest segment comparisons ("the PMR
    // quadtree sorts the line segments and is able to prune the search").
    for wi in [2usize, 3] {
        assert!(
            pmr[wi].seg_comps < rplus[wi].seg_comps && pmr[wi].seg_comps < rstar[wi].seg_comps,
            "workload {wi}: PMR {} vs R+ {} vs R* {}",
            pmr[wi].seg_comps,
            rplus[wi].seg_comps,
            rstar[wi].seg_comps
        );
    }
    // Range query: the R-trees need fewer segment comps than PMR (their
    // leaf entries carry bounding boxes; PMR must fetch each q-edge).
    assert!(rstar[6].seg_comps < pmr[6].seg_comps);
}

#[test]
fn occupancy_pipeline_shape() {
    let map = county(4000);
    let cfg = IndexConfig::default();
    let mut rstar = lsdb::rtree::RTree::build(&map, cfg, lsdb::rtree::RTreeKind::RStar);
    let mut rplus = lsdb::rplus::RPlusTree::build(&map, cfg);
    let ro = rstar.avg_leaf_occupancy();
    let po = rplus.avg_leaf_occupancy();
    // M = 50: occupancies in a plausible band (paper: 36 and 32).
    assert!(ro > 20.0 && ro < 50.0, "R* occupancy {ro}");
    assert!(po > 15.0 && po < 50.0, "R+ occupancy {po}");
    // PMR bucket occupancy ≈ 0.5 × threshold.
    for t in [4usize, 16] {
        let mut pmr = lsdb::pmr::PmrQuadtree::build(
            &map,
            lsdb::pmr::PmrConfig {
                threshold: t,
                index: cfg,
                ..Default::default()
            },
        );
        let occ = pmr.avg_bucket_occupancy();
        assert!(
            occ > 0.25 * t as f64 && occ < 1.2 * t as f64,
            "threshold {t}: occupancy {occ}"
        );
    }
}
