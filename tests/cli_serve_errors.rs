//! Exit-code contract of `lsdb serve` store handling: an unusable
//! `--store` must fail fast with a structured message on stderr and a
//! nonzero exit — before the index build, never as a panic.

use std::path::Path;
use std::process::Command;

fn lsdb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsdb"))
}

/// Write a small map file for serve to load, returning its path.
fn write_map(dir: &Path) -> std::path::PathBuf {
    let path = dir.join("tiny.lsdbmap");
    let out = lsdb()
        .args([
            "generate",
            "--class",
            "urban",
            "--segments",
            "200",
            "--seed",
            "1",
            "-o",
        ])
        .arg(&path)
        .output()
        .expect("run lsdb generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lsdb-serve-errors-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn serve_refuses_a_store_path_that_is_a_file() {
    let dir = temp_dir("file");
    let map = write_map(&dir);
    // --store points at an existing *file*: the store directory cannot
    // be created, which must surface as a structured error, not a panic.
    let blocker = dir.join("not-a-dir");
    std::fs::write(&blocker, b"occupied").unwrap();
    let out = lsdb()
        .arg("serve")
        .arg(&map)
        .args(["--structure", "rstar", "--port", "0", "--store"])
        .arg(&blocker)
        .output()
        .expect("run lsdb serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("cannot open store"),
        "stderr must name the store failure, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be an error, not a panic: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_refuses_an_unknown_superblock_version() {
    let dir = temp_dir("version");
    let map = write_map(&dir);
    // Forge DIR/ops.pages with a valid magic but format version 99: the
    // server must refuse it (mentioning the version) instead of serving
    // a store whose pages it would misinterpret.
    let store = dir.join("store");
    std::fs::create_dir_all(&store).unwrap();
    let page_size = 1024usize;
    let mut page0 = vec![0u8; page_size];
    page0[..8].copy_from_slice(b"LSDBPAGE");
    page0[8..10].copy_from_slice(&99u16.to_le_bytes());
    page0[12..16].copy_from_slice(&(page_size as u32).to_le_bytes());
    std::fs::write(store.join("ops.pages"), &page0).unwrap();
    let out = lsdb()
        .arg("serve")
        .arg(&map)
        .args(["--structure", "rstar", "--port", "0", "--store"])
        .arg(&store)
        .output()
        .expect("run lsdb serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("version"),
        "stderr must mention the unsupported version, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be an error, not a panic: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
