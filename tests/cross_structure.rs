//! Workspace integration tests: the three paper structures (plus the
//! uniform-grid baseline) must return *identical answers* to all five
//! paper queries on realistic generated county maps, and must agree with
//! the brute-force oracle.

use lsdb::core::pointgen::{EndpointGen, UniformGen, WindowGen};
use lsdb::core::{brute, queries, IndexConfig, PolygonalMap, QueryCtx, SegId};
use lsdb::geom::Dist2;
use lsdb_bench::{build_index, IndexKind};

fn test_map(class: lsdb::tiger::CountyClass, seed: u64) -> PolygonalMap {
    let spec = lsdb::tiger::CountySpec::new("itest", class, 1500, seed);
    let map = lsdb::tiger::generate(&spec);
    map.validate_planar().expect("generated maps are planar");
    map
}

fn all_kinds() -> Vec<IndexKind> {
    vec![
        IndexKind::RStar,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::RQuadratic,
        IndexKind::RLinear,
        IndexKind::Grid(32),
        IndexKind::Repr(8),
    ]
}

fn classes() -> Vec<(lsdb::tiger::CountyClass, u64)> {
    vec![
        (lsdb::tiger::CountyClass::Urban, 101),
        (lsdb::tiger::CountyClass::Suburban, 102),
        (lsdb::tiger::CountyClass::Rural { meander: 24 }, 103),
    ]
}

#[test]
fn query1_incident_agrees_with_oracle() {
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = EndpointGen::new(&map, seed);
        let probes: Vec<_> = (0..60).map(|_| gen.next_endpoint()).collect();
        for kind in all_kinds() {
            let idx = build_index(kind, &map, IndexConfig::default());
            let mut ctx = QueryCtx::new();
            for &(_, p) in &probes {
                assert_eq!(
                    brute::sorted(idx.find_incident(p, &mut ctx)),
                    brute::incident(&map, p),
                    "{kind:?} {class:?} at {p:?}"
                );
            }
        }
    }
}

#[test]
fn query2_second_endpoint_agrees_with_oracle() {
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = EndpointGen::new(&map, seed ^ 1);
        let probes: Vec<_> = (0..40).map(|_| gen.next_endpoint()).collect();
        for kind in all_kinds() {
            let idx = build_index(kind, &map, IndexConfig::default());
            let mut ctx = QueryCtx::new();
            for &(id, p) in &probes {
                assert_eq!(
                    brute::sorted(queries::second_endpoint(idx.as_ref(), id, p, &mut ctx)),
                    brute::second_endpoint(&map, id, p),
                    "{kind:?} {class:?} seg {id:?} at {p:?}"
                );
            }
        }
    }
}

#[test]
fn query3_nearest_distance_agrees_with_oracle() {
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = UniformGen::new(seed ^ 2);
        let probes: Vec<_> = (0..80).map(|_| gen.next_point()).collect();
        for kind in all_kinds() {
            let idx = build_index(kind, &map, IndexConfig::default());
            let mut ctx = QueryCtx::new();
            for &p in &probes {
                let got = idx.nearest(p, &mut ctx).expect("non-empty index");
                let want = brute::nearest(&map, p).unwrap();
                let got_d: Dist2 = map.segments[got.index()].dist2_point(p);
                assert_eq!(got_d, want.1, "{kind:?} {class:?} at {p:?}");
            }
        }
    }
}

#[test]
fn query4_polygon_walks_agree_across_structures() {
    // The enclosing-polygon walk is deterministic given the nearest edge;
    // nearest ties may differ across structures, so compare the walks only
    // when the three structures agree on the starting edge, and always
    // validate closure and membership.
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = UniformGen::new(seed ^ 3);
        let probes: Vec<_> = (0..25).map(|_| gen.next_point()).collect();
        let indexes: Vec<_> = all_kinds()
            .into_iter()
            .map(|k| build_index(k, &map, IndexConfig::default()))
            .collect();
        for &p in &probes {
            let starts: Vec<Option<SegId>> = indexes
                .iter()
                .map(|i| i.nearest(p, &mut QueryCtx::new()))
                .collect();
            let walks: Vec<_> = indexes
                .iter()
                .map(|i| {
                    queries::enclosing_polygon(i.as_ref(), p, map.len() * 3, &mut QueryCtx::new())
                })
                .collect();
            for w in &walks {
                let w = w.as_ref().expect("non-empty index");
                assert!(w.closed, "{class:?}: walk must close at {p:?}");
                assert!(!w.boundary.is_empty());
            }
            if starts.windows(2).all(|s| s[0] == s[1]) {
                let first = walks[0].as_ref().unwrap();
                for w in &walks[1..] {
                    assert_eq!(
                        w.as_ref().unwrap().boundary,
                        first.boundary,
                        "{class:?}: identical start must give identical walk at {p:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn query5_window_agrees_with_oracle() {
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = WindowGen::new(0.001, seed ^ 4);
        let windows: Vec<_> = (0..40).map(|_| gen.next_window()).collect();
        for kind in all_kinds() {
            let idx = build_index(kind, &map, IndexConfig::default());
            let mut ctx = QueryCtx::new();
            for &w in &windows {
                assert_eq!(
                    brute::sorted(idx.window(w, &mut ctx)),
                    brute::window(&map, w),
                    "{kind:?} {class:?} window {w:?}"
                );
            }
        }
    }
}

#[test]
fn deletion_keeps_all_structures_consistent() {
    let map = test_map(lsdb::tiger::CountyClass::Suburban, 777);
    let mut gen = WindowGen::new(0.001, 7);
    let windows: Vec<_> = (0..20).map(|_| gen.next_window()).collect();
    for kind in all_kinds() {
        let mut idx = build_index(kind, &map, IndexConfig::default());
        // Delete every 5th segment.
        for i in (0..map.len()).step_by(5) {
            assert!(idx.remove(SegId(i as u32)), "{kind:?} remove {i}");
        }
        assert_eq!(idx.len(), map.len() - map.len().div_ceil(5), "{kind:?}");
        let mut ctx = QueryCtx::new();
        for &w in &windows {
            let got = brute::sorted(idx.window(w, &mut ctx));
            let want: Vec<SegId> = brute::window(&map, w)
                .into_iter()
                .filter(|id| id.index() % 5 != 0)
                .collect();
            assert_eq!(got, want, "{kind:?} window {w:?} after deletes");
        }
    }
}

#[test]
fn resident_pages_are_free_cold_caches_fault() {
    // A pool big enough for the whole structure leaves every page resident
    // after the build: queries cost zero potential disk accesses. Dropping
    // the cache makes the same query fault. Both costs are read out of the
    // per-query context, never out of the shared index.
    let map = test_map(lsdb::tiger::CountyClass::Urban, 31);
    for kind in IndexKind::paper_three() {
        let cfg = IndexConfig {
            page_size: 1024,
            pool_pages: 4096,
            ..Default::default()
        };
        let mut idx = build_index(kind, &map, cfg);
        let p = lsdb::geom::Point::new(8000, 8000);
        let mut ctx = QueryCtx::new();
        let _ = idx.nearest(p, &mut ctx);
        assert_eq!(
            ctx.stats().disk.reads,
            0,
            "{kind:?}: fully resident index cannot fault"
        );
        idx.clear_cache();
        ctx.reset();
        let _ = idx.nearest(p, &mut ctx);
        assert!(
            ctx.stats().disk.reads > 0,
            "{kind:?}: cold query must fault pages"
        );
    }
}

#[test]
fn duplicate_geometry_distinct_ids_are_all_retrievable() {
    // Two distinct map records with identical geometry (legal at the
    // index level even though planar maps forbid it): every structure
    // must keep and report both.
    use lsdb::geom::{Point, Segment};
    let seg = Segment::new(Point::new(100, 100), Point::new(900, 500));
    let far = Segment::new(Point::new(5000, 5000), Point::new(6000, 6000));
    let map = PolygonalMap::new("dups", vec![seg, seg, far]);
    for kind in all_kinds() {
        let mut idx = build_index(kind, &map, IndexConfig::default());
        let mut ctx = QueryCtx::new();
        assert_eq!(idx.len(), 3, "{kind:?}");
        let got = brute::sorted(idx.find_incident(Point::new(100, 100), &mut ctx));
        assert_eq!(got, vec![SegId(0), SegId(1)], "{kind:?}");
        let w = lsdb::geom::Rect::new(0, 0, 1000, 1000);
        assert_eq!(
            brute::sorted(idx.window(w, &mut ctx)),
            vec![SegId(0), SegId(1)],
            "{kind:?}"
        );
        assert!(idx.remove(SegId(0)), "{kind:?}");
        ctx.reset();
        assert_eq!(
            idx.find_incident(Point::new(100, 100), &mut ctx),
            vec![SegId(1)],
            "{kind:?}"
        );
    }
}

#[test]
fn k_nearest_matches_brute_force_ranking() {
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = UniformGen::new(seed ^ 9);
        let probes: Vec<_> = (0..25).map(|_| gen.next_point()).collect();
        for kind in all_kinds() {
            let idx = build_index(kind, &map, IndexConfig::default());
            let mut ctx = QueryCtx::new();
            for &p in &probes {
                for k in [1usize, 3, 10] {
                    let got = idx.nearest_k(p, k, &mut ctx);
                    assert_eq!(got.len(), k.min(map.len()), "{kind:?} {class:?} k={k}");
                    // Distances must match the brute-force ranking (ties
                    // may permute ids, distances must agree rank-by-rank),
                    // and results must be distinct.
                    let mut brute_d: Vec<Dist2> =
                        map.segments.iter().map(|s| s.dist2_point(p)).collect();
                    brute_d.sort();
                    let mut seen = std::collections::HashSet::new();
                    for (rank, id) in got.iter().enumerate() {
                        assert!(seen.insert(*id), "{kind:?} duplicate in k-NN result");
                        let d = map.segments[id.index()].dist2_point(p);
                        assert_eq!(d, brute_d[rank], "{kind:?} {class:?} rank {rank} at {p:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn edge_cases_are_uniform_across_structures() {
    // One parameterized sweep: empty index, k = 0, k > n, and zero-area
    // windows (point and degenerate line) must behave identically for
    // every structure — no panics, no phantom results.
    use lsdb::geom::{Point, Rect, Segment};
    let empty = PolygonalMap::new("empty", vec![]);
    let tiny = PolygonalMap::new(
        "tiny",
        vec![
            Segment::new(Point::new(0, 0), Point::new(10, 0)),
            Segment::new(Point::new(0, 5), Point::new(10, 5)),
            Segment::new(Point::new(200, 200), Point::new(210, 200)),
        ],
    );
    let p = Point::new(3, 1);
    for kind in all_kinds() {
        // Empty index: every query answers "nothing" without touching disk.
        let idx = build_index(kind, &empty, IndexConfig::default());
        let mut ctx = QueryCtx::new();
        assert_eq!(idx.len(), 0, "{kind:?}");
        assert!(idx.find_incident(p, &mut ctx).is_empty(), "{kind:?}");
        assert_eq!(idx.nearest(p, &mut ctx), None, "{kind:?}");
        assert!(idx.nearest_k(p, 5, &mut ctx).is_empty(), "{kind:?}");
        assert!(
            idx.window(Rect::new(0, 0, 1000, 1000), &mut ctx).is_empty(),
            "{kind:?}"
        );

        let idx = build_index(kind, &tiny, IndexConfig::default());
        let mut ctx = QueryCtx::new();
        // k = 0 is a no-op; k > n exhausts the index in (distance, id) order.
        assert!(idx.nearest_k(p, 0, &mut ctx).is_empty(), "{kind:?}");
        assert_eq!(
            idx.nearest_k(p, 99, &mut ctx),
            vec![SegId(0), SegId(1), SegId(2)],
            "{kind:?} k > n"
        );
        // Zero-area windows: a point window on a segment interior, a point
        // window in empty space, and a degenerate (zero-height) line window
        // crossing both horizontal segments.
        assert_eq!(
            idx.window(Rect::new(5, 0, 5, 0), &mut ctx),
            vec![SegId(0)],
            "{kind:?} point window on segment"
        );
        assert!(
            idx.window(Rect::new(50, 50, 50, 50), &mut ctx).is_empty(),
            "{kind:?} point window in space"
        );
        assert_eq!(
            brute::sorted(idx.window(Rect::new(0, 0, 10, 0), &mut ctx)),
            brute::window(&tiny, Rect::new(0, 0, 10, 0)),
            "{kind:?} zero-height window"
        );
    }
}

#[test]
fn window_visit_streams_the_window_result_set() {
    // Property: for random windows, `window_visit` must stream exactly the
    // set `window` collects — same elements, no duplicates.
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = WindowGen::new(0.002, seed ^ 11);
        let windows: Vec<_> = (0..30).map(|_| gen.next_window()).collect();
        for kind in all_kinds() {
            let idx = build_index(kind, &map, IndexConfig::default());
            let mut ctx = QueryCtx::new();
            for &w in &windows {
                let collected = idx.window(w, &mut ctx);
                let mut streamed = Vec::new();
                idx.window_visit(w, &mut ctx, &mut |id| streamed.push(id));
                assert_eq!(
                    brute::sorted(streamed.clone()),
                    brute::sorted(collected),
                    "{kind:?} {class:?} window {w:?}"
                );
                let distinct: std::collections::HashSet<_> = streamed.iter().collect();
                assert_eq!(
                    distinct.len(),
                    streamed.len(),
                    "{kind:?} duplicate emission"
                );
            }
        }
    }
}

#[test]
fn k_nearest_is_deterministic_distance_then_id() {
    // Property: `nearest_k(p, n)` must reproduce the brute-force ranking
    // *including ties*: results ordered by (distance², SegId), identical
    // across every structure.
    for (class, seed) in classes() {
        let map = test_map(class, seed);
        let mut gen = UniformGen::new(seed ^ 13);
        let probes: Vec<_> = (0..15).map(|_| gen.next_point()).collect();
        for kind in all_kinds() {
            let idx = build_index(kind, &map, IndexConfig::default());
            let mut ctx = QueryCtx::new();
            for &p in &probes {
                let got = idx.nearest_k(p, map.len(), &mut ctx);
                let mut want: Vec<(Dist2, SegId)> = map
                    .segments
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.dist2_point(p), SegId(i as u32)))
                    .collect();
                want.sort();
                let want: Vec<SegId> = want.into_iter().map(|(_, id)| id).collect();
                assert_eq!(got, want, "{kind:?} {class:?} full ranking at {p:?}");
                // And nearest() is exactly the head of that ranking.
                assert_eq!(
                    idx.nearest(p, &mut ctx),
                    Some(want[0]),
                    "{kind:?} {class:?}"
                );
            }
        }
    }
}

#[test]
fn k_nearest_exhausts_small_index() {
    use lsdb::geom::{Point, Segment};
    let map = PolygonalMap::new(
        "small",
        vec![
            Segment::new(Point::new(0, 0), Point::new(10, 0)),
            Segment::new(Point::new(100, 100), Point::new(110, 100)),
        ],
    );
    for kind in all_kinds() {
        let idx = build_index(kind, &map, IndexConfig::default());
        let mut ctx = QueryCtx::new();
        let got = idx.nearest_k(Point::new(0, 0), 10, &mut ctx);
        assert_eq!(got, vec![SegId(0), SegId(1)], "{kind:?}");
        assert!(idx.nearest_k(Point::new(0, 0), 0, &mut ctx).is_empty());
    }
}
