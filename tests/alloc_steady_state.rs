//! Steady-state queries allocate nothing.
//!
//! The traversal engines in `lsdb_core::traverse` keep their stacks,
//! priority queue, and dedup set inside [`QueryCtx`], and the buffer pool
//! recycles retired pin buffers, so after a warm-up pass every further
//! `probe_point` / `nearest` / `window_visit` runs without touching the
//! allocator. This file holds exactly one test so the process-global
//! allocation counter sees only its own thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_queries_do_not_allocate() {
    use lsdb::core::pointgen::{UniformGen, WindowGen};
    use lsdb::core::{IndexConfig, QueryCtx};
    use lsdb_bench::{build_index, IndexKind};

    let spec = lsdb::tiger::CountySpec::new("alloc", lsdb::tiger::CountyClass::Suburban, 1200, 41);
    let map = lsdb::tiger::generate(&spec);
    // A pool large enough to keep every page resident: the steady state
    // under test is the query path, not cache replacement (faulting
    // queries also reach zero allocation once the pin-buffer spare list
    // is primed, but residency makes the assertion independent of the
    // replacement schedule).
    let cfg = IndexConfig {
        page_size: 1024,
        pool_pages: 8192,
        ..Default::default()
    };
    let mut pgen = UniformGen::new(99);
    let probes: Vec<_> = (0..50).map(|_| pgen.next_point()).collect();
    let mut wgen = WindowGen::new(0.001, 98);
    let windows: Vec<_> = (0..50).map(|_| wgen.next_window()).collect();

    // The queries below run through whatever scan ISA the dispatcher
    // picked (AVX2/SSE2 on x86-64 hosts, unless LSDB_FORCE_SCALAR pins
    // the fallback — CI runs this test under both arms), so the
    // zero-allocation guarantee covers the SIMD kernels: movemask
    // survivor extraction works entirely in registers and stack arrays.
    let isa = lsdb::core::scan::active_isa();
    assert!(isa.available());
    eprintln!("steady-state alloc test scanning via {}", isa.label());

    for kind in [
        IndexKind::RStar,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::Grid(32),
    ] {
        let idx = build_index(kind, &map, cfg);
        let mut ctx = QueryCtx::new();
        let mut sink = 0usize;
        // The sink only defeats dead-code elimination; wrapping arithmetic
        // because LocId values use the full u64 range.
        let pass = |ctx: &mut QueryCtx, sink: &mut usize| {
            for &p in &probes {
                *sink = sink.wrapping_add(idx.probe_point(p, ctx).0 as usize);
                *sink = sink.wrapping_add(idx.nearest(p, ctx).map_or(0, |id| id.index()));
                // Drives the scan kernels plus the segment mini-cache
                // (incident lookups resolve every surviving entry).
                idx.find_incident_visit(p, ctx, &mut |id| {
                    *sink = sink.wrapping_add(id.index());
                });
            }
            for &w in &windows {
                idx.window_visit(w, ctx, &mut |id| *sink = sink.wrapping_add(id.index()));
            }
        };
        // Warm-up sizes the context's scratch buffers.
        pass(&mut ctx, &mut sink);
        pass(&mut ctx, &mut sink);
        let before = ALLOCS.load(Ordering::Relaxed);
        pass(&mut ctx, &mut sink);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{kind:?}: steady-state queries must not allocate (sink={sink})"
        );
    }
}
