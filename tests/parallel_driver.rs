//! The parallel workload driver must be a pure wall-clock optimization:
//! for every structure, fanning a query batch across threads yields
//! byte-identical answers and identical summed counters to the sequential
//! run. This is the paper-reproducibility guarantee of the shared-read
//! query engine — Table 2 does not depend on `--threads`.

use lsdb::core::{IndexConfig, QueryCtx, QueryStats, SegId};
use lsdb_bench::workloads::{QueryWorkbench, Workload};
use lsdb_bench::{build_index, IndexKind};

fn test_map() -> lsdb::core::PolygonalMap {
    lsdb::tiger::generate(&lsdb::tiger::CountySpec::new(
        "par-test",
        lsdb::tiger::CountyClass::Suburban,
        1200,
        0xD81A,
    ))
}

fn driver_kinds() -> Vec<IndexKind> {
    vec![
        IndexKind::RStar,
        IndexKind::RPlus,
        IndexKind::Pmr,
        IndexKind::Grid(32),
    ]
}

#[test]
fn workload_averages_match_sequential_at_any_thread_count() {
    let map = test_map();
    let wb = QueryWorkbench::new(&map, 64, 0x5EA);
    for kind in driver_kinds() {
        let idx = build_index(kind, &map, IndexConfig::default());
        for w in Workload::ALL {
            let seq = wb.run(w, idx.as_ref());
            for threads in [2usize, 4, 5] {
                let par = wb.run_threaded(w, idx.as_ref(), threads);
                assert_eq!(seq, par, "{kind:?} {w:?} with {threads} threads");
            }
        }
    }
}

#[test]
fn per_query_answers_and_counters_are_byte_identical() {
    // Stronger than the averaged check: every individual query's answer
    // AND its context counters must match between a sequential pass and a
    // four-way chunked parallel pass over the same shared index.
    let map = test_map();
    let wb = QueryWorkbench::new(&map, 48, 0xBEEF);
    type PerQuery = (Vec<SegId>, Option<SegId>, Vec<SegId>, QueryStats);
    for kind in driver_kinds() {
        let idx = build_index(kind, &map, IndexConfig::default());
        let idx = idx.as_ref();
        let run_one = |i: usize| -> PerQuery {
            let mut ctx = QueryCtx::new();
            let (_, p) = wb.endpoints[i];
            let incident = idx.find_incident(p, &mut ctx);
            let nearest = idx.nearest(wb.uniform_points[i], &mut ctx);
            let window = idx.window(wb.windows[i], &mut ctx);
            (incident, nearest, window, ctx.stats())
        };
        let sequential: Vec<PerQuery> = (0..wb.endpoints.len()).map(run_one).collect();
        let parallel: Vec<PerQuery> = std::thread::scope(|scope| {
            let chunks: Vec<Vec<usize>> = (0..wb.endpoints.len())
                .collect::<Vec<_>>()
                .chunks(wb.endpoints.len().div_ceil(4))
                .map(|c| c.to_vec())
                .collect();
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || chunk.into_iter().map(run_one).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("query worker"))
                .collect()
        });
        assert_eq!(sequential, parallel, "{kind:?}");
    }
}
